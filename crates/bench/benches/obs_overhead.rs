//! Instrumentation overhead: the per-fetch cost of an *active* metrics
//! registry (counter increment + histogram record) must stay within 5%
//! of the no-op registry on a realistic fetch path, which is the bar
//! the runtime instrumentation was designed against — observability
//! must be cheap enough to leave on.
//!
//! The loop body simulates the cheapest fetch the runtime ever serves
//! (a node-local RAM read: touch a 4 KiB sample and fold it into a
//! checksum). Against that floor, the two-metric bookkeeping the
//! worker records per fetch must be noise. Slower tiers only dilute
//! the overhead further.

use criterion::{criterion_group, criterion_main, Criterion};
use nopfs_obs::Registry;
use std::hint::black_box;
use std::time::Instant;

const SAMPLE_BYTES: usize = 4096;
const ITERS: u64 = 200_000;
const ROUNDS: usize = 9;

/// The cheapest unit of real work per fetch: scan the sample.
fn touch_sample(sample: &[u8], salt: u64) -> u64 {
    let mut acc = salt;
    for chunk in sample.chunks_exact(8) {
        let mut w = [0u8; 8];
        w.copy_from_slice(chunk);
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from_le_bytes(w);
    }
    acc
}

/// One simulated fetch loop: real work plus the same counter bump and
/// latency observation the worker fetch path records per sample.
fn fetch_loop(registry: &Registry, sample: &[u8]) -> u64 {
    let served = registry.counter("bench.fetch.served");
    let latency = registry.histogram("bench.fetch.latency_ns");
    let mut acc = 0u64;
    for i in 0..ITERS {
        acc = touch_sample(black_box(sample), acc ^ i);
        served.inc();
        latency.record(black_box(acc | 1));
    }
    black_box(acc)
}

/// Median-of-rounds wall time for the fetch loop against `registry`.
fn measure(registry: &Registry, sample: &[u8]) -> f64 {
    // Warm up: fault in the metric handles and the branch predictor.
    black_box(fetch_loop(registry, sample));
    let mut samples: Vec<f64> = (0..ROUNDS)
        .map(|_| {
            let t0 = Instant::now();
            black_box(fetch_loop(registry, sample));
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn bench_overhead(c: &mut Criterion) {
    let sample: Vec<u8> = (0..SAMPLE_BYTES).map(|i| (i * 131) as u8).collect();
    let active = Registry::new();
    let noop = Registry::noop();

    c.bench_function("obs/fetch_active_registry", |b| {
        b.iter(|| fetch_loop(&active, &sample));
    });
    c.bench_function("obs/fetch_noop_registry", |b| {
        b.iter(|| fetch_loop(&noop, &sample));
    });

    let t_active = measure(&active, &sample);
    let t_noop = measure(&noop, &sample);
    let per_op_active = t_active / ITERS as f64 * 1e9;
    let per_op_noop = t_noop / ITERS as f64 * 1e9;
    let overhead = (t_active - t_noop) / t_noop * 100.0;
    println!();
    println!("--- instrumentation overhead (per 4 KiB RAM-tier fetch) ---");
    println!("    noop   registry: {per_op_noop:>8.2} ns/fetch");
    println!("    active registry: {per_op_active:>8.2} ns/fetch");
    println!("    overhead vs noop: {overhead:>+6.2}%");

    // The acceptance bar: active instrumentation within 5% of the
    // no-op registry on the cheapest fetch the runtime serves.
    assert!(
        t_active <= t_noop * 1.05,
        "instrumentation overhead {overhead:.2}% exceeds 5% budget \
         (active {per_op_active:.2} ns/fetch vs noop {per_op_noop:.2} ns/fetch)"
    );
    println!("    [PASS] overhead within 5% budget");
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
