//! Fig. 8: the simulator's policy comparison across the paper's six
//! dataset/regime scenarios (MNIST, ImageNet-1k, OpenImages,
//! ImageNet-22k, CosmoFlow, CosmoFlow-512³).
//!
//! Prints, per scenario, each policy's execution time (converted back
//! to the paper's units), the stacked time breakdown
//! (staging/local/remote/PFS), coverage notes, and the paper's
//! published Naive / NoPFS / lower-bound values for comparison.

use nopfs_bench::scenarios::fig8_scenarios;
use nopfs_bench::{bench_scale, report};
use nopfs_simulator::{run, PolicyId, SimError};

fn main() {
    let extra = bench_scale();
    for sc in fig8_scenarios() {
        let (scenario, factor) = sc.build(extra);
        report::banner(
            &format!("Fig. 8{}", sc.tag),
            &format!("{} — {}", scenario.name, sc.regime),
        );
        report::config_line(&format!(
            "N={} E={} B={} c={} MB/s  F={} (count scale {factor:.4})  regime {}",
            scenario.system.workers,
            scenario.epochs,
            scenario.batch_size,
            sc.compute_mbps,
            scenario.num_samples(),
            scenario.regime(),
        ));
        println!(
            "{:<20} {:>12} {:>7} {:>7} {:>7} {:>7}  notes",
            "Policy",
            format!("time ({})", sc.unit),
            "stg%",
            "loc%",
            "rem%",
            "pfs%"
        );
        let mut lb = None;
        let mut nopfs = None;
        let mut naive = None;
        for policy in PolicyId::ALL {
            match run(&scenario, policy) {
                Ok(r) => {
                    let t = sc.to_paper_units(r.execution_time, factor);
                    let (s, l, rem, p) = r.breakdown.fractions();
                    let note = r.note.clone().unwrap_or_default();
                    println!(
                        "{:<20} {:>12.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%  {note}",
                        policy.name(),
                        t,
                        s * 100.0,
                        l * 100.0,
                        rem * 100.0,
                        p * 100.0,
                    );
                    match policy {
                        PolicyId::Perfect => lb = Some(t),
                        PolicyId::NoPfs => nopfs = Some(t),
                        PolicyId::Naive => naive = Some(t),
                        _ => {}
                    }
                }
                Err(SimError::Unsupported(why)) => {
                    println!("{:<20} {:>12}  {why}", policy.name(), "n/a");
                }
            }
        }
        println!();
        println!(
            "paper ({}): Naive {:.2}  NoPFS {:.2}  Lower Bound {:.2}",
            sc.unit, sc.paper_naive, sc.paper_nopfs, sc.paper_lower_bound
        );
        if let (Some(lb), Some(np), Some(nv)) = (lb, nopfs, naive) {
            println!(
                "measured   : Naive {nv:.2}  NoPFS {np:.2}  Lower Bound {lb:.2}   \
                 (Naive/LB {}  NoPFS/LB {};  paper: {} / {})",
                report::ratio(nv, lb),
                report::ratio(np, lb),
                report::ratio(sc.paper_naive, sc.paper_lower_bound),
                report::ratio(sc.paper_nopfs, sc.paper_lower_bound),
            );
        }
    }
}
