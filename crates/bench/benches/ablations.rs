//! Ablations of NoPFS's design choices (DESIGN.md Sec. 8).
//!
//! Each section isolates one mechanism on a contended simulated
//! cluster, comparing NoPFS against the policy that differs in exactly
//! that mechanism:
//!
//! 1. *Placement* — frequency-ranked hierarchical placement (NoPFS) vs
//!    first-touch single-copy (LBANN) vs static shards (parallel
//!    staging).
//! 2. *Clairvoyant prefetch + caching* vs prefetch-only (staging
//!    buffer) vs nothing (naive).
//! 3. *Fill-order dilution* — the short-run artifact where a larger
//!    cache class can transiently hurt because the first-access fill
//!    order dilutes hot samples (quantified; the paper's regime keeps
//!    fills short relative to the run).
//! 4. *Progress heuristic* — runtime false-positive rate of the
//!    remote-availability estimate.

use nopfs_bench::report;
use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::scenarios::SystemKind;
use nopfs_perfmodel::presets::{fig8_small_cluster, saturating_pfs_curve};
use nopfs_simulator::{run, PolicyId, Scenario};
use nopfs_util::units::MB;

fn contended(ram: u64, ssd: u64, epochs: u64) -> Scenario {
    let mut sys = fig8_small_cluster();
    sys.pfs_read = saturating_pfs_curve(200.0 * MB, 8.0);
    sys.classes[0].capacity = ram;
    sys.classes[1].capacity = ssd;
    sys.staging.capacity = 16 * 1_000_000;
    Scenario::new("ablation", sys, vec![100_000u64; 2_000], epochs, 8, 0xAB1)
}

fn main() {
    report::banner(
        "Ablations",
        "Design-choice isolation on a contended cluster",
    );

    report::section("1. Placement policy (same substrates, same budget)");
    let s = contended(60_000_000, 200_000_000, 4);
    for policy in [
        PolicyId::NoPfs,
        PolicyId::LbannDynamic,
        PolicyId::ParallelStaging,
        PolicyId::LocalityAware,
    ] {
        match run(&s, policy) {
            Ok(r) => println!(
                "{:<20} {:>8.3}s  stall {:>7.3}s  coverage {:>5.1}%",
                policy.name(),
                r.execution_time,
                r.total_stall(),
                r.coverage * 100.0
            ),
            Err(e) => println!("{:<20} {e}", policy.name()),
        }
    }

    report::section("2. Prefetching and caching vs prefetching alone");
    for policy in [
        PolicyId::NoPfs,
        PolicyId::StagingBuffer,
        PolicyId::Naive,
        PolicyId::Perfect,
    ] {
        let r = run(&s, policy).expect("supported");
        println!(
            "{:<20} {:>8.3}s  ({} of lower bound)",
            policy.name(),
            r.execution_time,
            report::ratio(
                r.execution_time,
                run(&s, PolicyId::Perfect).expect("lb").execution_time
            )
        );
    }

    report::section("3. Fill-order dilution (short runs, growing RAM)");
    println!("RAM(MB)  2-epoch time   8-epoch time   (larger cache may hurt short runs)");
    for ram_mb in [20u64, 40, 80] {
        let short = run(&contended(ram_mb * 1_000_000, 0, 2), PolicyId::NoPfs)
            .expect("runs")
            .execution_time;
        let long = run(&contended(ram_mb * 1_000_000, 0, 8), PolicyId::NoPfs)
            .expect("runs")
            .execution_time;
        println!("{ram_mb:>7}  {short:>12.3}s {long:>13.3}s");
    }

    report::section("4. Progress-heuristic quality (runtime, scaled ImageNet)");
    for n in [2usize, 4] {
        let exp = Experiment::imagenet(SystemKind::Lassen, n);
        let run = run_policy(&exp, RuntimePolicy::NoPfs).expect("runs");
        let stats = run.merged_stats();
        let attempts = stats.remote_fetches + stats.false_positives;
        let rate = if attempts > 0 {
            stats.false_positives as f64 / attempts as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{n} workers: {} remote fetches, {} false positives ({rate:.2}%), {} heuristic skips",
            stats.remote_fetches, stats.false_positives, stats.heuristic_skips
        );
    }
    println!();
    println!(
        "paper reference: 'we confirmed that, in practice, there are very few false positives.'"
    );
}
