//! Fig. 16: end-to-end training — accuracy versus time and epochs.
//!
//! The paper trains ResNet-50/ImageNet-1k to 76.5% top-1 with both
//! loaders: the accuracy-vs-epoch curves coincide (both do full-dataset
//! randomization) while NoPFS's accuracy-vs-*time* curve is compressed
//! 1.42×. Here a real (tiny) logistic-regression model is trained
//! data-parallel through each loader on a synthetic separable task; the
//! gradients genuinely flow through the modelled interconnect, and the
//! wall-clock difference comes from the loaders alone.

use nopfs_baselines::{DataLoader, DoubleBufferRunner, NoIoRunner};
use nopfs_bench::report;
use nopfs_bench::scenarios::{runtime_system, SystemKind};
use nopfs_core::{Job, JobConfig};
use nopfs_datasets::DatasetProfile;
use nopfs_net::{cluster, Endpoint, NetConfig};
use nopfs_pfs::Pfs;
use nopfs_train::{LogisticModel, SyntheticTask};
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::sync::Arc;

const DIM: usize = 24;
const EPOCHS: u64 = 8;
const WORKERS: usize = 4;
const LR: f32 = 0.5;
const COMPUTE: f64 = 24.0e6; // model bytes/s

struct EpochPoint {
    time: f64,
    accuracy: f64,
}

/// The per-worker training closure: a real data-parallel SGD loop.
fn train_worker(
    loader: &mut dyn DataLoader,
    profile: &DatasetProfile,
    task: &SyntheticTask,
    endpoint: &Endpoint<Vec<f32>>,
    scale: TimeScale,
    eval: &[(Vec<f32>, f32)],
) -> Vec<EpochPoint> {
    let mut model = LogisticModel::new(DIM);
    let mut grad = vec![0.0f32; DIM + 1];
    let mut curve = Vec::new();
    let epoch_len = loader.epoch_len();
    let mut consumed = 0u64;
    let t0 = std::time::Instant::now();
    while let Some(batch) = loader.next_batch() {
        let bytes: u64 = batch.iter().map(|(_, d)| d.len() as u64).sum();
        let examples: Vec<(Vec<f32>, f32)> = batch
            .iter()
            .map(|(id, _)| {
                let label = profile.label_of(*id);
                (task.features(*id, label), task.label(label))
            })
            .collect();
        model.gradient(&examples, &mut grad);
        // The emulated heavy compute (the tiny model is the stand-in
        // for ResNet-50; its real cost is microseconds).
        scale.wait(bytes as f64 / COMPUTE);
        endpoint.allreduce_sum(&mut grad).expect("allreduce");
        for g in grad.iter_mut() {
            *g /= WORKERS as f32;
        }
        model.apply(&grad, LR);
        consumed += batch.len() as u64;
        if consumed.is_multiple_of(epoch_len) {
            curve.push(EpochPoint {
                time: scale.to_model(t0.elapsed()),
                accuracy: model.accuracy(eval),
            });
        }
    }
    curve
}

fn run(policy: &str, profile: &DatasetProfile, sizes: Arc<Vec<u64>>) -> Vec<EpochPoint> {
    let mut system = runtime_system(SystemKind::Lassen, WORKERS, 1.0 / 2_000.0, 48.0);
    system.compute = COMPUTE;
    let scale = TimeScale::new(0.5);
    let config = JobConfig::new(0xF1_66, EPOCHS, 8, system.clone(), scale);
    let task = SyntheticTask::new(DIM, 1.5, 1.0, 0xAC);
    let eval: Vec<(Vec<f32>, f32)> = (1_000_000..1_000_400u64)
        .map(|id| {
            let label = profile.label_of(id);
            (task.features(id, label), task.label(label))
        })
        .collect();
    let endpoints: Mutex<Vec<Option<Endpoint<Vec<f32>>>>> = Mutex::new(
        cluster::<Vec<f32>>(WORKERS, NetConfig::new(system.interconnect, scale))
            .into_iter()
            .map(Some)
            .collect(),
    );
    let body = |loader: &mut dyn DataLoader| {
        let ep = endpoints.lock()[loader.rank()].take().expect("one take");
        train_worker(loader, profile, &task, &ep, scale, &eval)
    };
    let pfs = Pfs::in_memory(system.pfs_read.clone(), scale);
    profile.materialize(&pfs);
    let mut curves = match policy {
        "pytorch" => DoubleBufferRunner::pytorch_like(config, sizes).run(&pfs, body),
        "nopfs" => {
            let job = Job::new(config, sizes);
            job.run(&pfs, |w| body(w))
        }
        _ => NoIoRunner::new(config, sizes).run(body),
    };
    // All workers hold identical models (synchronous SGD); report the
    // slowest worker's clock, the bulk-synchronous convention.
    let mut out = curves.pop().expect("at least one worker");
    for c in curves {
        for (o, p) in out.iter_mut().zip(c) {
            o.time = o.time.max(p.time);
        }
    }
    out
}

fn main() {
    report::banner(
        "Fig. 16",
        "End-to-end training: accuracy vs time and epochs (scaled)",
    );
    let profile = DatasetProfile::new("Fig16-Synthetic", 1_200, 20_000.0, 0.0, 2, 0xF16D);
    let sizes = Arc::new(profile.sizes());
    report::config_line(&format!(
        "{WORKERS} workers, {EPOCHS} epochs, F={}, logistic model dim={DIM}",
        profile.num_samples
    ));

    let mut finals = Vec::new();
    for policy in ["pytorch", "nopfs", "noio"] {
        let curve = run(policy, &profile, Arc::clone(&sizes));
        report::section(&format!("{policy} — accuracy per epoch"));
        for (e, p) in curve.iter().enumerate() {
            println!(
                "epoch {:>2}: t = {:>8.3}s   accuracy = {:>5.1}%",
                e,
                p.time,
                p.accuracy * 100.0
            );
        }
        let last = curve.last().expect("training produced epochs");
        finals.push((policy, last.time, last.accuracy));
    }

    report::section("Summary (paper: 111 min PyTorch vs 78 min NoPFS, both 76.5%)");
    for (policy, time, acc) in &finals {
        println!(
            "{policy:<8} finished at {time:>8.3}s with accuracy {:>5.1}%",
            acc * 100.0
        );
    }
    let pt = finals.iter().find(|f| f.0 == "pytorch").expect("ran");
    let np = finals.iter().find(|f| f.0 == "nopfs").expect("ran");
    println!(
        "NoPFS end-to-end speedup over PyTorch: {} (paper: 1.42x); \
         accuracy difference: {:.2} points (paper: none — same randomization)",
        report::ratio(pt.1, np.1),
        (pt.2 - np.2).abs() * 100.0
    );
}
