//! Fig. 12: NoPFS cache statistics for ImageNet-1k on Piz Daint —
//! stall time and the share of staging prefetches served from local
//! storage, remote caches, and the PFS, as the worker count grows.
//!
//! Shapes to reproduce: stall time shrinks at larger scale (more
//! aggregate cache), the PFS share falls, and the remote share rises
//! once reading from peers beats a contended PFS. Also reports the
//! progress-heuristic false positives the paper's discussion says are
//! "very few".

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::scenarios::SystemKind;
use nopfs_bench::{env_u64, report};

fn main() {
    let max_workers = env_u64("NOPFS_BENCH_WORKERS", 8) as usize;
    report::banner(
        "Fig. 12",
        "NoPFS cache statistics, ImageNet-1k, Piz Daint (scaled)",
    );
    println!(
        "{:>8} {:>12} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "#workers", "stall (s)", "PFS%", "remote%", "local%", "false-pos", "heur-skip"
    );
    for n in [2usize, 4, 8, 16] {
        if n > max_workers {
            continue;
        }
        let exp = Experiment::imagenet(SystemKind::PizDaint, n);
        let run = run_policy(&exp, RuntimePolicy::NoPfs).expect("NoPFS always runs");
        let stats = run.merged_stats();
        let (local, remote, pfs) = stats.fractions();
        let stall_model: f64 = run
            .per_worker
            .iter()
            .map(|m| exp.scale.to_model(m.stats.stall_time))
            .sum();
        println!(
            "{n:>8} {stall_model:>12.4} {:>7.1}% {:>7.1}% {:>7.1}% {:>10} {:>10}",
            pfs * 100.0,
            remote * 100.0,
            local * 100.0,
            stats.false_positives,
            stats.heuristic_skips,
        );
        let attempts = stats.remote_fetches + stats.false_positives;
        if attempts > 0 {
            println!(
                "{:>8} false-positive rate among remote attempts: {:.2}%",
                "",
                stats.false_positives as f64 / attempts as f64 * 100.0
            );
        }
    }
    println!();
    println!(
        "paper reference (Piz Daint, 32->256 GPUs): stall 99.6s -> 16.4s; \
         PFS share falls and the remote share grows with scale."
    );
}
