//! fig_cloud: the object-store origin under its failure domain.
//!
//! NoPFS assumes the dataset starts "at rest on a PFS"; this experiment
//! moves the origin behind a cloud object store with a per-request
//! latency floor, parallelism-dependent throughput, and a seeded
//! disturbance model (tail-latency spikes, throttle bursts, brownout
//! windows), then compares two clients on identical disturbance seeds:
//!
//! * **hardened** — per-attempt deadlines, capped full-jitter retries,
//!   hedged second requests, and a circuit breaker that steers the
//!   loader to peers and local tiers while the origin is sick;
//! * **naive** — unbounded retries on a bare backoff, nothing else.
//!
//! Headline (asserted): across a request-parallelism × brownout-severity
//! sweep, the hardened client holds within 1.5x of its own fault-free
//! run while never losing to the naive client — and the delivered
//! sample stream is bit-identical to the fault-free run (proved on the
//! thread runtime, where an elastic job rides out a brownout *and* a
//! mid-epoch crash).
//!
//! Emits `BENCH_fig_cloud.json`. Scale with `NOPFS_BENCH_SCALE`.

use nopfs_bench::bench_scale;
use nopfs_bench::report::{self, resilience_json, tier_stats_json, Json};
use nopfs_bench::scenarios::fig_cloud;
use nopfs_cluster::run_cluster;
use nopfs_core::{ElasticJob, JobConfig};
use nopfs_datasets::DatasetProfile;
use nopfs_policy::{FaultPlan, PolicyId};
use nopfs_simulator::run;
use nopfs_util::timing::TimeScale;
use std::sync::Arc;

fn main() {
    let extra = bench_scale();
    report::banner(
        "fig_cloud",
        "object-store origin: deadlines, hedging, circuit breaking, graceful degradation",
    );
    let ambient = fig_cloud::ambient();
    report::config_line(&format!(
        "floor {:.0}ms  F={} samples x {} KB  E={}  ambient: {:.0}% {:.0}x spikes, throttle bursts ≤{}",
        fig_cloud::FLOOR * 1e3,
        fig_cloud::samples(extra),
        fig_cloud::SAMPLE_BYTES / 1_000,
        fig_cloud::EPOCHS,
        ambient.spike_rate * 100.0,
        ambient.spike_factor,
        ambient.throttle_burst,
    ));

    // 1. Simulator sweep: request parallelism × brownout severity.
    report::section("simulator: hardened vs naive origin clients (NoPFS policy)");
    println!(
        "{:<8} {:<10} {:>9} {:>12} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "workers",
        "brownout",
        "quiet(s)",
        "hardened(s)",
        "slowdown",
        "naive(s)",
        "slowdown",
        "hedges",
        "breaker",
        "throttl"
    );
    let mut sweep_rows: Vec<Json> = Vec::new();
    for &workers in &[2usize, 4, 8] {
        let base = fig_cloud::sim_scenario(workers, extra);
        let quiet = run(
            &fig_cloud::with_cloud(&base, fig_cloud::quiet(), fig_cloud::hardened()),
            PolicyId::NoPfs,
        )
        .expect("NoPfs supports every scenario");
        for &(label, latency_factor, extra_throttle) in &fig_cloud::SEVERITIES {
            let storm = fig_cloud::storm(quiet.execution_time, latency_factor, extra_throttle);
            let hardened = run(
                &fig_cloud::with_cloud(&base, storm.clone(), fig_cloud::hardened()),
                PolicyId::NoPfs,
            )
            .unwrap();
            let naive = run(
                &fig_cloud::with_cloud(&base, storm, fig_cloud::naive()),
                PolicyId::NoPfs,
            )
            .unwrap();
            let hs = hardened.resilience.expect("cloud stats");
            let ns = naive.resilience.expect("cloud stats");
            let h_slow = hardened.execution_time / quiet.execution_time;
            let n_slow = naive.execution_time / quiet.execution_time;
            println!(
                "{:<8} {:<10} {:>9.3} {:>12.3} {:>9.2}x {:>12.3} {:>9.2}x {:>8} {:>8} {:>8}",
                workers,
                label,
                quiet.execution_time,
                hardened.execution_time,
                h_slow,
                naive.execution_time,
                n_slow,
                hs.hedges_fired,
                hs.breaker_to_open,
                hs.throttled,
            );
            // The headline, asserted cell by cell: bounded degradation
            // for the hardened client, which never loses to naive.
            assert!(
                h_slow <= fig_cloud::BOUND,
                "hardened client exceeded the {}x bound at n={workers}/{label}: {h_slow:.2}x",
                fig_cloud::BOUND
            );
            // Near-ties are fine at mild severities (both clients are
            // dominated by the same browned reads); the hardened client
            // must never *meaningfully* lose, and must strictly win
            // once the brownout is severe.
            assert!(
                hardened.execution_time <= naive.execution_time * 1.02,
                "hardened lost to naive at n={workers}/{label}"
            );
            if label == "severe" {
                assert!(
                    hardened.execution_time < naive.execution_time,
                    "hardened must strictly win the severe brownout at n={workers}"
                );
            }
            // Identical access streams: same fetch totals everywhere.
            let total = |r: &nopfs_simulator::SimResult| r.fetch_counts.iter().sum::<u64>();
            assert_eq!(total(&quiet), total(&hardened));
            assert_eq!(total(&quiet), total(&naive));
            // The failure domain was exercised, and only the hardened
            // client owns hedge/breaker machinery.
            assert!(hs.throttled > 0 && hs.hedges_fired > 0);
            assert_eq!(ns.hedges_fired, 0);
            assert_eq!(ns.breaker_to_open, 0);
            sweep_rows.push(Json::obj([
                ("workers", Json::from(workers as u64)),
                ("severity", Json::from(label)),
                ("latency_factor", Json::Num(latency_factor)),
                ("extra_throttle", Json::Num(extra_throttle)),
                ("quiet_s", Json::Num(quiet.execution_time)),
                ("hardened_s", Json::Num(hardened.execution_time)),
                ("hardened_slowdown", Json::Num(h_slow)),
                ("naive_s", Json::Num(naive.execution_time)),
                ("naive_slowdown", Json::Num(n_slow)),
                ("hardened_resilience", resilience_json(&hs)),
                ("naive_resilience", resilience_json(&ns)),
            ]));
        }
    }

    // 2. Thread runtime: the disturbed stream is bit-identical.
    report::section("runtime: brownout + crash, stream bit-identical to fault-free");
    let mut system = nopfs_perfmodel::presets::fig8_small_cluster();
    system.workers = 4;
    system.staging.capacity = 64 * 2_000;
    system.staging.threads = 4;
    system.classes[0].capacity = 120 * 2_000;
    system.classes[1].capacity = 240 * 2_000;
    let profile = DatasetProfile::new("cloud-rt", 240, 2_000.0, 0.0, 10, 7);
    let sizes = Arc::new(profile.sizes());
    let config = JobConfig::new(0xC10D, 3, 8, system, TimeScale::new(1e-3));
    let run_rt = |plan: FaultPlan| {
        let job = ElasticJob::new(config.clone(), Arc::clone(&sizes), plan).expect("valid plan");
        let pfs = job.make_pfs();
        profile.materialize(&pfs);
        job.run(&pfs)
    };
    let baseline = run_rt(FaultPlan::fault_free());
    let disturbed = run_rt(fig_cloud::runtime_plan());
    assert_eq!(
        disturbed.global_stream, baseline.global_stream,
        "origin disturbances changed the delivered stream"
    );
    let rt = &disturbed.resilience;
    assert!(rt.reads > 0 && rt.throttled > 0 && rt.retries > 0);
    assert_eq!(rt.exhausted, 0, "the retry budget absorbed every burst");
    println!(
        "origin reads {}  retries {}  throttled {}  hedges {}  exhausted {}  stream identical: true",
        rt.reads, rt.retries, rt.throttled, rt.hedges_fired, rt.exhausted
    );

    // 3. Cluster: per-tenant resilience and tier statistics.
    report::section("cluster: cloud tenant co-scheduled with a steady tenant");
    let cluster = run_cluster(&fig_cloud::cluster_spec());
    let mut tenant_rows: Vec<Json> = Vec::new();
    for t in &cluster.tenants {
        let res_str = t
            .resilience
            .as_ref()
            .map(|r| {
                format!(
                    "reads {} retries {} throttled {}",
                    r.reads, r.retries, r.throttled
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<8} samples {:>5}  epochs {:>2}  resilience: {}",
            t.name,
            t.stats.samples_consumed,
            t.epoch_times.len(),
            res_str
        );
        tenant_rows.push(Json::obj([
            ("name", Json::from(t.name.clone())),
            ("policy", Json::from(t.policy.to_string())),
            ("samples_consumed", Json::from(t.stats.samples_consumed)),
            (
                "resilience",
                t.resilience.as_ref().map_or(Json::Null, resilience_json),
            ),
            (
                "tier_stats",
                Json::Arr(t.tier_stats.iter().map(tier_stats_json).collect()),
            ),
        ]));
    }
    let cloudy = &cluster.tenants[0];
    assert!(cloudy.resilience.as_ref().is_some_and(|r| r.reads > 0));
    assert!(!cloudy.tier_stats.is_empty());

    let doc = Json::obj([
        ("figure", Json::from("fig_cloud")),
        ("source", Json::from("benches/fig_cloud.rs")),
        ("bench_scale", Json::Num(extra)),
        ("latency_floor_s", Json::Num(fig_cloud::FLOOR)),
        ("bounded_slowdown_target", Json::Num(fig_cloud::BOUND)),
        ("sweep", Json::Arr(sweep_rows)),
        (
            "runtime",
            Json::obj([
                ("stream_identical", Json::Bool(true)),
                ("resilience", resilience_json(rt)),
                (
                    "tier_stats",
                    Json::Arr(disturbed.tier_stats.iter().map(tier_stats_json).collect()),
                ),
            ]),
        ),
        ("cluster_tenants", Json::Arr(tenant_rows)),
    ]);
    report::write_json("BENCH_fig_cloud.json", &doc).expect("write JSON report");

    println!();
    println!("reading: the hardened client hedges tail spikes, trips its breaker on");
    println!("throttle storms (steering fetches to peers and local tiers), and caps");
    println!("deadline thrash — bounded degradation with a bit-identical stream.");
}
