//! Criterion microbenchmarks for the hot paths.
//!
//! The paper claims NoPFS's overhead is small: "it only needs to
//! compute the access sequence in advance, which is fast". These
//! benches quantify that claim for our implementation — shuffle
//! generation, stream materialization, frequency analysis, placement —
//! plus the core data-path structures (staging buffer, token bucket,
//! simulator step rate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nopfs_clairvoyance::engine::{stream_digest, SetupPass};
use nopfs_clairvoyance::frequency::{expected_tail_count, FrequencyTable};
use nopfs_clairvoyance::placement::{CacheAssignment, GlobalPlacement};
use nopfs_clairvoyance::sampler::ShuffleSpec;
use nopfs_clairvoyance::stream::AccessStream;
use nopfs_perfmodel::presets::fig8_small_cluster;
use nopfs_simulator::{run, PolicyId, Scenario};
use nopfs_storage::StagingBuffer;
use nopfs_util::rate::TokenBucket;
use nopfs_util::rng::Xoshiro256pp;
use std::hint::black_box;

fn bench_shuffle(c: &mut Criterion) {
    c.bench_function("epoch_shuffle_100k", |b| {
        let spec = ShuffleSpec::new(1, 100_000, 16, 64, false);
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            black_box(spec.epoch_shuffle(epoch));
        });
    });
}

fn bench_stream(c: &mut Criterion) {
    c.bench_function("stream_materialize_10_epochs", |b| {
        let spec = ShuffleSpec::new(2, 50_000, 8, 32, false);
        let stream = AccessStream::new(spec, 0, 10);
        b.iter(|| black_box(stream.materialize()));
    });
}

fn bench_frequency(c: &mut Criterion) {
    c.bench_function("frequency_table_50k_x_10", |b| {
        let spec = ShuffleSpec::new(3, 50_000, 8, 32, false);
        b.iter(|| black_box(FrequencyTable::build(&spec, 10)));
    });
    c.bench_function("binomial_tail_imagenet", |b| {
        b.iter(|| black_box(expected_tail_count(1_281_167, 90, 16, 0.8)));
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("cache_assignment_100k", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let freq: Vec<u16> = (0..100_000).map(|_| (rng.next_below(16)) as u16).collect();
        let first: Vec<u64> = (0..100_000u64).collect();
        let sizes = vec![100_000u64; 100_000];
        let caps = vec![2_000_000_000u64, 6_000_000_000];
        b.iter(|| {
            black_box(CacheAssignment::compute(&freq, &first, &sizes, &caps));
        });
    });
}

/// Before/after benchmarks of the whole clairvoyant setup phase at the
/// paper's Fig. 10 shape (N=16, E=90, ImageNet-1k scaled 1/500).
///
/// Two "old" variants reproduce, with today's building blocks, exactly
/// what a job's setup computed before the single-pass engine: placement
/// rebuilt its own frequency table and per-worker first-access scans,
/// every rank materialized its own stream, and every rank re-derived
/// all N digests for the allgather check — O(N²·E) epoch-shuffle
/// generations per job.
///
/// - `setup_old_total_work` runs that on one thread: the total setup
///   CPU cost, which is also the per-job wall time wherever launch-
///   phase work is not thread-parallel (distributed one-process-per-
///   rank deployments pay O(N·E) of it serially per rank).
/// - `setup_old_wall_in_process` is faithful to the old in-process
///   harness: serial `Job::new`, then the launch-phase work on N
///   concurrent rank threads — the wall time this box actually saw,
///   with the redundancy partially hidden by idle cores.
/// - `setup_engine_single_pass` is the current `Job::new` path: one
///   `SetupPass` (E generations) plus placement from its artifacts.
///
/// EXPERIMENTS.md records both measured ratios.
fn bench_setup_phase(c: &mut Criterion) {
    const N: usize = 16;
    const EPOCHS: u64 = 90;
    const F: u64 = 1_281_167 / 500;
    let spec = ShuffleSpec::new(0xF16A, F, N, 8, false);
    let sizes = vec![100_000u64; F as usize];
    let caps: Vec<Vec<u64>> = vec![vec![20_000_000u64, 60_000_000]; N];

    // Job::new, old shape: placement from scratch (frequency table +
    // per-worker first-access scans).
    let old_placement = |spec: &ShuffleSpec| -> Vec<CacheAssignment> {
        let table = FrequencyTable::build(spec, EPOCHS);
        (0..N)
            .map(|w| {
                let first = AccessStream::new(*spec, w, EPOCHS).first_access_positions();
                CacheAssignment::compute(table.counts(w), &first, &sizes, &caps[w])
            })
            .collect()
    };
    // WorkerHandle::launch, old shape for one rank: re-derive all N
    // digests for the allgather check and materialize the own stream.
    let old_launch_one_rank = |spec: &ShuffleSpec, rank: usize| -> (Vec<u64>, Vec<u64>) {
        let digests = (0..N).map(|o| stream_digest(spec, o, EPOCHS)).collect();
        let stream = AccessStream::new(*spec, rank, EPOCHS).materialize();
        (digests, stream)
    };

    c.bench_function("setup_old_total_work_n16_e90", |b| {
        b.iter(|| {
            let assignments = old_placement(&spec);
            let per_rank: Vec<_> = (0..N).map(|r| old_launch_one_rank(&spec, r)).collect();
            black_box((assignments, per_rank));
        });
    });

    c.bench_function("setup_old_wall_in_process_n16_e90", |b| {
        b.iter(|| {
            let assignments = old_placement(&spec);
            let per_rank: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..N)
                    .map(|r| s.spawn(move || old_launch_one_rank(&spec, r)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            black_box((assignments, per_rank));
        });
    });

    c.bench_function("setup_engine_single_pass_n16_e90", |b| {
        b.iter(|| {
            let artifacts = SetupPass::new(spec, EPOCHS).run();
            let placement = GlobalPlacement::from_artifacts(&artifacts, &sizes, &caps);
            black_box((artifacts, placement));
        });
    });
}

fn bench_staging(c: &mut Criterion) {
    c.bench_function("staging_buffer_push_pop", |b| {
        let buf = StagingBuffer::new(1_000_000_000);
        let payload = bytes::Bytes::from(vec![0u8; 4_096]);
        b.iter_batched(
            || payload.clone(),
            |p| {
                buf.push(1, p);
                black_box(buf.pop());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("token_bucket_acquire_hot", |b| {
        let tb = TokenBucket::new(1e15, 1e15);
        b.iter(|| tb.acquire(black_box(4_096)));
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_nopfs_2k_samples_3_epochs", |b| {
        let sys = fig8_small_cluster();
        let scenario = Scenario::new("micro", sys, vec![100_000u64; 2_000], 3, 8, 5);
        b.iter(|| black_box(run(&scenario, PolicyId::NoPfs).expect("runs")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_shuffle, bench_stream, bench_frequency, bench_placement,
              bench_setup_phase, bench_staging, bench_token_bucket, bench_simulator
}
criterion_main!(benches);
