//! Fig. 14: epoch and batch times for ImageNet-22k on Lassen — the
//! "many more samples" stress test (1.3 TB, 14.2M files at full scale).
//!
//! Shapes to reproduce: NoPFS up to 2.4× faster than PyTorch, with the
//! gap growing at scale; RAM alone cannot hold the working set, so the
//! SSD tier (hardware independence) carries the caching.

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::{env_u64, report};

fn main() {
    let max_workers = env_u64("NOPFS_BENCH_WORKERS", 8) as usize;
    report::banner(
        "Fig. 14",
        "ImageNet-22k epoch & batch times on Lassen (scaled)",
    );
    for n in [2usize, 4, 8, 16] {
        if n > max_workers {
            continue;
        }
        let exp = Experiment::imagenet_22k(n);
        report::section(&format!("{n} workers"));
        let mut pytorch = None;
        let mut nopfs = None;
        for policy in [
            RuntimePolicy::PyTorch,
            RuntimePolicy::NoPfs,
            RuntimePolicy::NoIo,
        ] {
            let run = run_policy(&exp, policy).expect("supported");
            let epoch = run.median_epoch_time();
            println!(
                "{:<10} epoch {:>8.4}s   batch {}",
                policy.name(),
                epoch,
                report::dist(&run.batch_summary(true))
            );
            if let Some(setup) = &run.setup {
                println!("{:<10} {}", "", report::setup_line(setup));
            }
            match policy {
                RuntimePolicy::PyTorch => pytorch = Some(epoch),
                RuntimePolicy::NoPfs => nopfs = Some(epoch),
                _ => {}
            }
        }
        if let (Some(pt), Some(np)) = (pytorch, nopfs) {
            println!("  -> NoPFS speedup over PyTorch: {}", report::ratio(pt, np));
        }
    }
    println!();
    println!("paper reference: NoPFS up to 2.4x faster at 1024 GPUs.");
}
