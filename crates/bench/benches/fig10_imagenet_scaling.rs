//! Fig. 10: epoch and batch times for ResNet-50/ImageNet-1k training
//! on Piz Daint (left) and Lassen (right), scaling the worker count.
//!
//! Shapes to reproduce (paper Sec. 7.1): NoPFS is the fastest loader at
//! every scale and its advantage grows with workers as PFS contention
//! throttles PyTorch/DALI (up to 2.2× on Piz Daint, 5.4× on Lassen);
//! DALI only modestly improves on PyTorch; LBANN sits between PyTorch
//! and NoPFS; batch-time tails are an order of magnitude shorter for
//! NoPFS after epoch 0.

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::scenarios::SystemKind;
use nopfs_bench::{env_u64, report};

fn main() {
    let max_workers = env_u64("NOPFS_BENCH_WORKERS", 8) as usize;
    let worker_counts: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&n| n <= max_workers)
        .collect();

    for kind in [SystemKind::PizDaint, SystemKind::Lassen] {
        let policies: &[RuntimePolicy] = match kind {
            SystemKind::PizDaint => &[
                RuntimePolicy::PyTorch,
                RuntimePolicy::Dali,
                RuntimePolicy::NoPfs,
                RuntimePolicy::NoIo,
            ],
            SystemKind::Lassen => &[
                RuntimePolicy::PyTorch,
                RuntimePolicy::Lbann,
                RuntimePolicy::NoPfs,
                RuntimePolicy::NoIo,
            ],
        };
        report::banner(
            "Fig. 10",
            &format!(
                "ImageNet-1k epoch & batch times on {} (scaled)",
                kind.name()
            ),
        );
        for &n in &worker_counts {
            let exp = Experiment::imagenet(kind, n);
            report::section(&format!("{n} workers"));
            let mut pytorch_epoch = None;
            let mut nopfs_epoch = None;
            for &policy in policies {
                match run_policy(&exp, policy) {
                    Some(run) => {
                        let epoch = run.median_epoch_time();
                        let batches = run.batch_summary(true);
                        println!(
                            "{:<14} epoch {:>8.4}s   batch {}",
                            policy.name(),
                            epoch,
                            report::dist(&batches)
                        );
                        if let Some(setup) = &run.setup {
                            println!("{:<14} {}", "", report::setup_line(setup));
                        }
                        match policy {
                            RuntimePolicy::PyTorch => pytorch_epoch = Some(epoch),
                            RuntimePolicy::NoPfs => nopfs_epoch = Some(epoch),
                            _ => {}
                        }
                    }
                    None => println!(
                        "{:<14} unsupported (dataset exceeds aggregate memory)",
                        policy.name()
                    ),
                }
            }
            if let (Some(pt), Some(np)) = (pytorch_epoch, nopfs_epoch) {
                println!("  -> NoPFS speedup over PyTorch: {}", report::ratio(pt, np));
            }
        }
        println!();
        println!(
            "paper reference: NoPFS up to {} faster than PyTorch on {}, growing with scale.",
            if kind == SystemKind::PizDaint {
                "2.2x"
            } else {
                "5.4x"
            },
            kind.name()
        );
    }
}
