//! Hot-path reader scaling: aggregate `TierStack::read` throughput as
//! reader threads grow.
//!
//! The sharded fetch path exists for exactly one reason: at production
//! worker counts the binding constraint is per-core read throughput,
//! and a fetch path that funnels every sample through one global
//! critical section stays flat no matter how many readers arrive. This
//! bench measures that directly. A hot RAM tier (every sample cached,
//! nothing ever falls to the origin) serves readers whose per-request
//! cost is a modelled device service time — wall-clock latency that
//! *overlaps* across outstanding requests, like real device queue
//! depth. Two variants sweep 1→64 reader threads:
//!
//! - **sharded** — today's [`TierStack::read`]: the catalog, backend
//!   store, and promotion bookkeeping are all sharded, so concurrent
//!   readers of different samples take different locks and their
//!   service times overlap;
//! - **coarse** — the pre-sharding reference: one global fetch lock
//!   held across the whole read (the serialization a single coarse
//!   critical section imposes — effectively device queue depth 1), so
//!   added readers only queue.
//!
//! Every read self-checks byte identity against the id-derived
//! pattern. Emits `BENCH_fig_hotpath.json` (the perf-trajectory
//! artifact). Knobs: `NOPFS_HOTPATH_MAX_THREADS`,
//! `NOPFS_HOTPATH_READS` (per thread per point),
//! `NOPFS_HOTPATH_SERVICE_US`.

use bytes::Bytes;
use nopfs_bench::env_u64;
use nopfs_bench::report::{self, Json};
use nopfs_storage::{
    DataSource, MemoryBackend, PromotePolicy, SampleId, SourceError, SourceHealth, TierStack,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source with a modelled per-request service time: each read pays
/// `service` of wall-clock latency before the bytes come back. The
/// wait happens in the calling thread with no lock held, so — like a
/// real device with queue depth — concurrent requests overlap.
struct Paced {
    inner: Arc<dyn DataSource>,
    service: Duration,
}

impl DataSource for Paced {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        std::thread::sleep(self.service);
        self.inner.read(id)
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }

    fn health(&self) -> SourceHealth {
        self.inner.health()
    }
}

/// The id-derived sample pattern every read verifies against.
fn sample_bytes(id: SampleId, size: usize) -> Bytes {
    Bytes::from(vec![(id % 251) as u8; size])
}

/// A hot stack: `n` samples of `size` bytes filled (pinned) into a
/// paced RAM tier over an unpaced origin that also holds everything —
/// reads must never leave tier 0.
fn hot_stack(n: u64, size: usize, service: Duration) -> TierStack {
    let ram: Arc<dyn DataSource> = Arc::new(Paced {
        inner: Arc::new(MemoryBackend::new("ram", u64::MAX)),
        service,
    });
    let origin = MemoryBackend::new("pfs", u64::MAX);
    for id in 0..n {
        DataSource::write(&origin, id, sample_bytes(id, size)).expect("origin preload");
    }
    let stack = TierStack::new(vec![ram, Arc::new(origin)], PromotePolicy::IfFits);
    for id in 0..n {
        stack.fill(0, id, sample_bytes(id, size)).expect("fill ram");
    }
    stack
}

/// Runs `threads` readers, each performing `reads` shard-spreading
/// reads through `read_one`, and returns aggregate samples/second.
/// Every read is byte-checked.
fn sweep_point<F>(threads: usize, reads: u64, n: u64, size: usize, read_one: F) -> f64
where
    F: Fn(SampleId) -> Bytes + Sync,
{
    let read_one = &read_one;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                for i in 0..reads {
                    // Stride by a large odd constant so concurrent
                    // threads touch different samples (different
                    // shards), like independent reader streams.
                    let id = (t * reads + i).wrapping_mul(2_654_435_761) % n;
                    let data = read_one(id);
                    assert_eq!(
                        data,
                        sample_bytes(id, size),
                        "byte identity broken for sample {id}"
                    );
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    (threads as u64 * reads) as f64 / wall
}

fn main() {
    let max_threads = env_u64("NOPFS_HOTPATH_MAX_THREADS", 64) as usize;
    let reads = env_u64("NOPFS_HOTPATH_READS", 40);
    let service = Duration::from_micros(env_u64("NOPFS_HOTPATH_SERVICE_US", 1_000));
    let n = 1024u64;
    let size = 4096usize;

    report::banner(
        "Hot path (reader scaling)",
        "aggregate TierStack::read throughput, sharded vs coarse-lock, hot RAM tier",
    );
    report::config_line(&format!(
        "{n} samples x {size} B, service {:?}/read, {reads} reads/thread/point",
        service
    ));

    let sharded = hot_stack(n, size, service);
    let coarse = hot_stack(n, size, service);
    let coarse_lock = Mutex::new(());

    let threads: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();

    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "threads", "sharded s/s", "coarse s/s", "sharded x", "coarse x"
    );
    let mut series = Vec::new();
    let mut sharded_base = 0.0f64;
    let mut coarse_base = 0.0f64;
    let mut speedup_at_16 = None;
    for &t in &threads {
        let sharded_sps = sweep_point(t, reads, n, size, |id| sharded.read(id).expect("hot read"));
        let coarse_sps = sweep_point(t, reads, n, size, |id| {
            let _g = coarse_lock.lock();
            coarse.read(id).expect("hot read")
        });
        if t == 1 {
            sharded_base = sharded_sps;
            coarse_base = coarse_sps;
        }
        let sharded_x = sharded_sps / sharded_base;
        let coarse_x = coarse_sps / coarse_base;
        if t == 16 {
            speedup_at_16 = Some(sharded_x);
        }
        println!(
            "{t:>8} {sharded_sps:>14.0} {coarse_sps:>14.0} {sharded_x:>11.2}x {coarse_x:>11.2}x"
        );
        series.push(Json::obj([
            ("threads", Json::from(t as u64)),
            ("sharded_samples_per_sec", Json::Num(sharded_sps)),
            ("coarse_samples_per_sec", Json::Num(coarse_sps)),
            ("sharded_speedup", Json::Num(sharded_x)),
            ("coarse_speedup", Json::Num(coarse_x)),
            ("sharded_per_thread", Json::Num(sharded_sps / t as f64)),
        ]));
    }

    // Nothing may ever have left the hot tier: zero origin reads, and
    // the paced tier's hit count equals the total read count.
    let stats = sharded.all_stats();
    assert_eq!(stats.last().expect("origin stats").hits, 0, "origin read");

    let doc = Json::obj([
        ("figure", Json::from("fig_hotpath")),
        ("samples", Json::from(n)),
        ("sample_bytes", Json::from(size as u64)),
        ("service_us", Json::from(service.as_micros() as u64)),
        ("reads_per_thread", Json::from(reads)),
        ("series", Json::Arr(series)),
    ]);
    report::write_json("BENCH_fig_hotpath.json", &doc).expect("write JSON report");

    // The acceptance gate: >=4x aggregate throughput at 16 readers on
    // the sharded path (the coarse reference stays near-flat).
    if let Some(x) = speedup_at_16 {
        assert!(
            x >= 4.0,
            "sharded hot path only {x:.2}x at 16 threads (need >=4x)"
        );
        println!("\n    [PASS] sharded hot path {x:.2}x at 16 threads (>=4x required)");
    }
}
