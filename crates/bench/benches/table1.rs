//! Table 1: qualitative comparison of I/O frameworks.
//!
//! The capability matrix is derived programmatically from each
//! implemented policy's `capabilities()` metadata, so the table stays
//! consistent with what the code actually does.

use nopfs_bench::report;
use nopfs_simulator::PolicyId;

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        " no"
    }
}

fn main() {
    report::banner(
        "Table 1",
        "Comparison of I/O frameworks (derived from policy metadata)",
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Approach", "SysScal", "DataScal", "FullRand", "HwIndep", "EaseUse"
    );
    let rows = [
        ("Double-buffering", PolicyId::Naive),
        ("tf.data / staging", PolicyId::StagingBuffer),
        ("Data sharding", PolicyId::ParallelStaging),
        ("DeepIO", PolicyId::DeepIoOrdered),
        ("LBANN data store", PolicyId::LbannDynamic),
        ("Locality-aware", PolicyId::LocalityAware),
        ("NoPFS (this paper)", PolicyId::NoPfs),
    ];
    for (label, policy) in rows {
        let c = policy.capabilities();
        println!(
            "{label:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
            mark(c.system_scalability),
            mark(c.dataset_scalability),
            mark(c.full_randomization),
            mark(c.hardware_independence),
            mark(c.ease_of_use),
        );
    }
    println!();
    println!("Paper reference: only NoPFS has every column 'yes' (Tab. 1).");
}
