//! Fig. 13: batch-size sensitivity — ResNet-50/ImageNet-1k on Lassen at
//! a fixed worker count, sweeping the per-worker batch size.
//!
//! Shapes to reproduce: NoPFS is faster at every batch size; per-batch
//! time necessarily grows with batch size for everyone; PyTorch's
//! batch-time *variance* grows with batch size (more I/O per step) while
//! NoPFS's stays roughly constant.

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::scenarios::SystemKind;
use nopfs_bench::{env_u64, report};

fn main() {
    let n = env_u64("NOPFS_BENCH_WORKERS", 4) as usize;
    report::banner(
        "Fig. 13",
        &format!("Batch-size sweep, ImageNet-1k, Lassen, {n} workers (scaled)"),
    );
    println!(
        "{:>6} {:<10} {:>12} {:>40} {:>10}",
        "batch", "policy", "epoch (s)", "batch time (excl. epoch 0)", "rel stdev"
    );
    for batch in [4usize, 8, 16, 32] {
        for policy in [
            RuntimePolicy::PyTorch,
            RuntimePolicy::NoPfs,
            RuntimePolicy::NoIo,
        ] {
            let exp = Experiment::imagenet(SystemKind::Lassen, n).with_batch(batch);
            let run = run_policy(&exp, policy).expect("supported");
            let batches = run.batch_summary(true);
            let rel_sd = if batches.mean() > 0.0 {
                batches.std_dev() / batches.mean()
            } else {
                0.0
            };
            println!(
                "{batch:>6} {:<10} {:>12.4} {:>40} {:>9.1}%",
                policy.name(),
                run.median_epoch_time(),
                report::dist(&batches),
                rel_sd * 100.0,
            );
        }
    }
    println!();
    println!(
        "paper reference: NoPFS faster at every batch size; PyTorch's variance \
         grows with batch size, NoPFS's stays roughly constant."
    );
}
