//! Fig. 9: the environment (design-space) evaluation — ImageNet-22k
//! with 5× compute/preprocess throughput under the NoPFS policy,
//! sweeping staging-buffer, RAM, and SSD capacities.
//!
//! The paper's findings to reproduce: (1) staging buffers of 1–5 GB all
//! behave the same (not the limiting factor); (2) runtime improves
//! monotonically with RAM; (3) SSD capacity can compensate for small
//! RAM, and matters less once RAM is large.

use nopfs_bench::scenarios::fig9_base;
use nopfs_bench::{bench_scale, report};
use nopfs_simulator::environment::sweep;
use nopfs_simulator::{run, PolicyId};
use nopfs_util::units::GB;

fn main() {
    let (base, factor) = fig9_base(bench_scale());
    report::banner(
        "Fig. 9",
        "Design-space sweep: ImageNet-22k, 5x compute, NoPFS policy",
    );
    report::config_line(&format!(
        "N={} E={} F={} (count scale {factor:.4}); capacities below are full-scale labels",
        base.system.workers,
        base.epochs,
        base.num_samples()
    ));

    let lb = run(&base, PolicyId::Perfect).expect("lower bound runs");
    let scale_cap = |gb: f64| ((gb * GB * factor) as u64).max(4_096);

    report::section("Staging-buffer-only sensitivity (paper: all 1.64 hrs)");
    for staging_gb in [1.0, 2.0, 4.0, 5.0] {
        let pts = sweep(
            &base,
            PolicyId::NoPfs,
            &[scale_cap(staging_gb)],
            &[scale_cap(0.001)], // effectively no RAM class
            &[0],
        )
        .expect("sweep runs");
        println!(
            "staging {:>4.0} GB : {:>9.4} s (scaled)",
            staging_gb, pts[0].execution_time
        );
    }

    report::section("RAM x SSD sweep (scaled execution time, seconds)");
    let ram_gb = [32.0, 64.0, 128.0, 256.0, 512.0];
    let ssd_gb = [0.0, 128.0, 256.0, 512.0, 1024.0];
    print!("{:>10}", "RAM\\SSD");
    for &s in &ssd_gb {
        print!("{:>10.0}", s);
    }
    println!();
    for &r in &ram_gb {
        print!("{:>10.0}", r);
        let pts = sweep(
            &base,
            PolicyId::NoPfs,
            &[scale_cap(5.0)],
            &[scale_cap(r)],
            &ssd_gb
                .iter()
                .map(|&s| if s == 0.0 { 0 } else { scale_cap(s) })
                .collect::<Vec<_>>(),
        )
        .expect("sweep runs");
        for p in &pts {
            print!("{:>10.4}", p.execution_time);
        }
        println!();
    }
    println!();
    println!(
        "lower bound (scaled): {:.4} s; paper's full-scale lower bound: 1.06 hrs",
        lb.execution_time
    );
    println!("paper reference: 1.64 hrs at (32 GB, 0) down to ~1.07 hrs at (512 GB, 128 GB).");
}
