//! Fig. 3: access-frequency distribution for a single worker (1 of 16)
//! over 90 epochs of ImageNet-1k, plus the Sec. 3.1 analytic check.
//!
//! The paper's numbers: each sample is accessed ~6 times on average by
//! the worker, the Binomial model predicts ~31,635 samples accessed
//! more than 10 times, and the Monte-Carlo count is 31,863.

use nopfs_bench::{bench_scale, report};
use nopfs_clairvoyance::frequency::{expected_tail_count, FrequencyTable};
use nopfs_clairvoyance::sampler::ShuffleSpec;

fn main() {
    let scale = bench_scale();
    let workers = 16usize;
    let epochs = 90u64;
    let full_f = 1_281_167u64;
    let f = ((full_f as f64 * scale) as u64).clamp(10_000, full_f);

    report::banner(
        "Fig. 3",
        "Access frequency for one worker of 16, 90 epochs, ImageNet-1k",
    );
    report::config_line(&format!(
        "N={workers} E={epochs} F={f}{}",
        if f < full_f { " (scaled)" } else { "" }
    ));

    let spec = ShuffleSpec::new(0xF163, f, workers, 64, false);
    let table = FrequencyTable::build(&spec, epochs);
    let hist = table.histogram(0, 18);

    report::section("Histogram (samples per access frequency, worker 0)");
    let max = hist.counts().iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in hist.counts().iter().enumerate() {
        let bar = "#".repeat(((count * 48) / max) as usize);
        println!("{i:>3} accesses: {count:>9}  {bar}");
    }

    report::section("Binomial tail vs Monte Carlo (delta = 0.8)");
    let delta = 0.8;
    let mu = epochs as f64 / workers as f64;
    let threshold = ((1.0 + delta) * mu).ceil() as u16;
    let analytic = expected_tail_count(f, epochs, workers, delta);
    let empirical = table.count_at_least(0, threshold);
    println!("mean accesses per sample (mu)     : {mu:.3}");
    println!("tail threshold ((1+d)*mu, ceil)   : {threshold}");
    println!("analytic  F*P(X >= {threshold})            : {analytic:.0}");
    println!("Monte-Carlo count (worker 0)      : {empirical}");
    let rel = (empirical as f64 - analytic).abs() / analytic;
    println!("relative difference               : {:.2}%", rel * 100.0);
    if f == full_f {
        println!("paper reference                   : 31,635 expected / 31,863 observed");
    } else {
        let full = expected_tail_count(full_f, epochs, workers, delta);
        println!("full-scale analytic (F=1,281,167) : {full:.0}  (paper: 31,635)");
    }
}
