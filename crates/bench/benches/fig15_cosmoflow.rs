//! Fig. 15: epoch and batch times for CosmoFlow on Lassen — the "much
//! more data" stress test (large fixed-size samples; 4.5 TB at full
//! scale, exceeding cluster storage at small worker counts).
//!
//! Shapes to reproduce: NoPFS up to 2.1× faster and very close to the
//! no-I/O bound; batch times are *bimodal* because every sample has
//! the same (large) size, so a batch's time depends on where its
//! samples were fetched from.

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::{env_u64, report};
use nopfs_util::stats::Summary;

/// A crude bimodality indicator: the largest gap between consecutive
/// sorted batch times, relative to the overall spread.
fn largest_gap_fraction(s: &Summary) -> f64 {
    let v = s.sorted();
    if v.len() < 3 {
        return 0.0;
    }
    let spread = s.max() - s.min();
    if spread <= 0.0 {
        return 0.0;
    }
    v.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max) / spread
}

fn main() {
    let max_workers = env_u64("NOPFS_BENCH_WORKERS", 8) as usize;
    report::banner(
        "Fig. 15",
        "CosmoFlow epoch & batch times on Lassen (scaled)",
    );
    for n in [2usize, 4, 8, 16] {
        if n > max_workers {
            continue;
        }
        let exp = Experiment::cosmoflow(n);
        report::section(&format!("{n} workers"));
        let mut pytorch = None;
        let mut nopfs = None;
        for policy in [
            RuntimePolicy::PyTorch,
            RuntimePolicy::NoPfs,
            RuntimePolicy::NoIo,
        ] {
            let run = run_policy(&exp, policy).expect("supported");
            let epoch = run.median_epoch_time();
            let batches = run.batch_summary(true);
            println!(
                "{:<10} epoch {:>8.4}s   batch {}   gap-frac {:.2}",
                policy.name(),
                epoch,
                report::dist(&batches),
                largest_gap_fraction(&batches),
            );
            if let Some(setup) = &run.setup {
                println!("{:<10} {}", "", report::setup_line(setup));
            }
            match policy {
                RuntimePolicy::PyTorch => pytorch = Some(epoch),
                RuntimePolicy::NoPfs => nopfs = Some(epoch),
                _ => {}
            }
        }
        if let (Some(pt), Some(np)) = (pytorch, nopfs) {
            println!("  -> NoPFS speedup over PyTorch: {}", report::ratio(pt, np));
        }
    }
    println!();
    println!(
        "paper reference: NoPFS up to 2.1x faster, close to the no-I/O bound; \
         same-size samples make the batch-time distribution bimodal \
         (fetch-location dependent) — a high gap fraction for NoPFS."
    );
}
