//! Fig. 11: epoch-0 batch times for ImageNet-1k on Piz Daint.
//!
//! The paper's point: in the *first* epoch all loaders must touch the
//! PFS, so NoPFS's batch-time distribution is only slightly tighter
//! than PyTorch/DALI's — but for those loaders every epoch looks like
//! the first ("without caching, it is always 'the first epoch' for a
//! data loader"), while NoPFS's later epochs are served from caches.

use nopfs_bench::runtime::{run_policy, Experiment, RuntimePolicy};
use nopfs_bench::scenarios::SystemKind;
use nopfs_bench::{env_u64, report};

fn main() {
    let n = env_u64("NOPFS_BENCH_WORKERS", 4) as usize;
    let exp = Experiment::imagenet(SystemKind::PizDaint, n);
    report::banner(
        "Fig. 11",
        &format!("Epoch-0 batch times, ImageNet-1k, Piz Daint, {n} workers (scaled)"),
    );
    for policy in [
        RuntimePolicy::PyTorch,
        RuntimePolicy::Dali,
        RuntimePolicy::NoPfs,
    ] {
        let run = run_policy(&exp, policy).expect("policy supported");
        let first = run.first_epoch_batches();
        let later = run.batch_summary(true);
        println!(
            "{:<14} epoch-0 batch {}   later epochs {}",
            policy.name(),
            report::dist(&first),
            report::dist(&later),
        );
        let ratio = if later.median() > 0.0 {
            first.median() / later.median()
        } else {
            1.0
        };
        println!("{:<14}   epoch-0 / later median ratio: {ratio:.2}x", "");
    }
    println!();
    println!(
        "paper reference: all loaders are comparable in epoch 0; only NoPFS \
         improves afterwards (PyTorch/DALI epoch-0 variance persists forever)."
    );
}
