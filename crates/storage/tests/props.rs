//! Property-based tests for the storage substrates: no sample is ever
//! lost, duplicated, reordered, or corrupted, under arbitrary sizes and
//! concurrency.

use bytes::Bytes;
use nopfs_storage::{MemoryBackend, ReorderStage, StagingBuffer, StorageBackend};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIFO staging preserves order and bytes for any sample sizes.
    #[test]
    fn staging_fifo_integrity(sizes in prop::collection::vec(1usize..200, 1..60)) {
        let buf = StagingBuffer::new(10_000);
        let expected: Vec<(u64, Bytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u64, Bytes::from(vec![(i % 251) as u8; s])))
            .collect();
        let b2 = buf.clone();
        let exp2 = expected.clone();
        let producer = std::thread::spawn(move || {
            for (id, data) in exp2 {
                assert!(b2.push(id, data));
            }
            b2.close();
        });
        let mut got = Vec::new();
        while let Some(item) = buf.pop() {
            got.push(item);
        }
        producer.join().expect("producer");
        prop_assert_eq!(got, expected);
    }

    /// Reorder staging delivers positions 0..n in order regardless of
    /// the (shuffled) push order, with multiple producers.
    #[test]
    fn reorder_delivers_in_position_order(
        seed in any::<u64>(),
        n in 1u64..120,
    ) {
        use nopfs_util::rng::Xoshiro256pp;
        let stage = ReorderStage::new(100_000);
        let mut order: Vec<u64> = (0..n).collect();
        Xoshiro256pp::seed_from_u64(seed).shuffle(&mut order);
        let halves: Vec<Vec<u64>> = order.chunks((n as usize).div_ceil(2)).map(<[u64]>::to_vec).collect();
        let producers: Vec<_> = halves
            .into_iter()
            .map(|chunk| {
                let stage = stage.clone();
                std::thread::spawn(move || {
                    for pos in chunk {
                        stage.push(pos, pos * 7, Bytes::from(vec![(pos % 256) as u8; 4]));
                    }
                })
            })
            .collect();
        for pos in 0..n {
            let (id, data) = stage.pop().expect("every position arrives");
            prop_assert_eq!(id, pos * 7);
            prop_assert_eq!(data[0], (pos % 256) as u8);
        }
        for p in producers {
            p.join().expect("producer");
        }
        prop_assert_eq!(stage.used(), 0);
    }

    /// Memory backends account bytes exactly under arbitrary
    /// insert/evict/replace interleavings.
    #[test]
    fn backend_accounting_is_exact(
        ops in prop::collection::vec((0u64..20, 1usize..64, any::<bool>()), 1..100)
    ) {
        let b = MemoryBackend::new("prop", 100_000);
        let mut model: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (id, size, evict) in ops {
            if evict {
                let was = model.remove(&id).is_some();
                prop_assert_eq!(b.evict(id), was);
            } else {
                b.insert(id, Bytes::from(vec![0u8; size])).expect("fits");
                model.insert(id, size);
            }
            let expect: usize = model.values().sum();
            prop_assert_eq!(b.used() as usize, expect);
            prop_assert_eq!(b.count(), model.len());
        }
        for (&id, &size) in &model {
            prop_assert_eq!(b.get(id).expect("present").len(), size);
        }
    }
}
