//! The metadata store: "a catalog of locally cached samples"
//! (paper Sec. 5.2.2).
//!
//! Tracks which storage class currently holds each locally cached
//! sample. Because NoPFS placement is clairvoyant, the catalog needs no
//! distributed synchronization — every worker maintains only its own —
//! but it is updated concurrently by that worker's class prefetchers
//! and queried by its staging prefetchers and the remote-serving
//! thread, so it must be thread-safe.

use crate::shard::ShardedMap;
use crate::SampleId;

/// Thread-safe catalog of locally cached samples.
///
/// Backed by a [`ShardedMap`] so catalog lookups on the fetch hot path
/// (every `TierStack::read` starts with one) don't contend on a single
/// lock word across reader threads.
#[derive(Debug, Default)]
pub struct MetadataStore {
    map: ShardedMap<u8>,
}

impl MetadataStore {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `id` is cached in storage class `class`, returning
    /// the class a previous entry pointed at (so the caller can retire
    /// the superseded resident copy instead of orphaning it).
    pub fn mark_cached(&self, id: SampleId, class: u8) -> Option<u8> {
        self.map.insert(id, class)
    }

    /// Claims the catalog entry for `id` at `class` unless a *faster*
    /// class already holds it (atomic check-and-set under the entry's
    /// shard lock — the placement arbiter for racing promotions).
    ///
    /// Returns `Ok(prev)` when the claim won (`prev` is the displaced
    /// slower entry, which the caller must retire) and `Err(faster)`
    /// when a strictly faster copy is already cataloged (the caller
    /// must withdraw its own copy).
    ///
    /// # Errors
    /// `Err(existing)` when `existing < class`.
    pub fn claim_fastest(&self, id: SampleId, class: u8) -> Result<Option<u8>, u8> {
        let mut shard = self.map.shard(id).write();
        match shard.get(&id) {
            Some(&existing) if existing < class => Err(existing),
            _ => Ok(shard.insert(id, class)),
        }
    }

    /// The class caching `id`, if any.
    pub fn lookup(&self, id: SampleId) -> Option<u8> {
        self.map.get(id)
    }

    /// Whether `id` is cached locally.
    pub fn is_cached(&self, id: SampleId) -> bool {
        self.map.contains(id)
    }

    /// Removes `id` from the catalog (eviction), returning its class.
    pub fn remove(&self, id: SampleId) -> Option<u8> {
        self.map.remove(id)
    }

    /// Removes `id` only if it is currently cataloged in `class`
    /// (atomic compare-and-remove, for callers repairing a stale entry
    /// that may have been re-cataloged concurrently). Returns whether
    /// the entry was removed.
    pub fn remove_if(&self, id: SampleId, class: u8) -> bool {
        self.map.remove_if(id, &class)
    }

    /// Number of cached samples.
    pub fn cached_count(&self) -> usize {
        self.map.len()
    }

    /// Number cached in a specific class.
    pub fn cached_in_class(&self, class: u8) -> usize {
        self.map
            .fold(0, |acc, _, &c| if c == class { acc + 1 } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mark_lookup_remove() {
        let m = MetadataStore::new();
        assert!(!m.is_cached(1));
        m.mark_cached(1, 0);
        m.mark_cached(2, 1);
        assert_eq!(m.lookup(1), Some(0));
        assert_eq!(m.lookup(2), Some(1));
        assert_eq!(m.cached_count(), 2);
        assert_eq!(m.cached_in_class(0), 1);
        assert_eq!(m.remove(1), Some(0));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.cached_count(), 1);
        // Guarded removal only fires on a matching class.
        assert!(!m.remove_if(2, 0));
        assert_eq!(m.lookup(2), Some(1));
        assert!(m.remove_if(2, 1));
        assert!(!m.remove_if(2, 1));
        assert_eq!(m.cached_count(), 0);
    }

    #[test]
    fn reclassification_overwrites() {
        let m = MetadataStore::new();
        m.mark_cached(5, 1);
        m.mark_cached(5, 0); // promoted to a faster class
        assert_eq!(m.lookup(5), Some(0));
        assert_eq!(m.cached_count(), 1);
    }

    #[test]
    fn concurrent_marking_is_consistent() {
        let m = Arc::new(MetadataStore::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        m.mark_cached(t * 250 + i, (t % 2) as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.cached_count(), 1_000);
        assert_eq!(m.cached_in_class(0) + m.cached_in_class(1), 1_000);
    }
}
