//! Storage substrates for the NoPFS runtime (paper Sec. 5.2.2).
//!
//! The C++ NoPFS core is built from a staging buffer ("filled in a
//! circular manner", shared with the framework via a producer/consumer
//! queue), generic storage backends ("filesystem- and memory-based …
//! sufficient to support most storage classes"), and a metadata store
//! ("a catalog of locally cached samples"). This crate reproduces each:
//!
//! - [`staging::StagingBuffer`] — a byte-capacity-bounded FIFO of
//!   samples with blocking produce/consume, the boundary between
//!   prefetcher threads and the training loop.
//! - [`backend`] — the [`backend::StorageBackend`] trait with memory
//!   and filesystem implementations, plus throughput throttles that
//!   make a RAM-backed store behave like the `r_j(p)`/`w_j(p)` curves
//!   of whatever device it models.
//! - [`metadata::MetadataStore`] — the thread-safe local cache catalog.
//! - [`tier`] — the tiered data-source hierarchy: the [`tier::DataSource`]
//!   trait unifying every storage level (these backends, the synthetic
//!   PFS, anything colder) and [`tier::TierStack`], the single fetch
//!   entry point with per-tier statistics and promotion-on-miss.
//! - [`fault`] — fault injection and retry as [`tier::DataSource`]
//!   wrappers: [`fault::FaultySource`] injects deterministic bounded
//!   bursts of transient read errors, [`fault::RetryingSource`] retries
//!   them with seeded, capped, full-jitter exponential backoff.
//! - [`objectstore`] — the cloud origin tier:
//!   [`objectstore::ObjectStoreBackend`] charges S3-like request
//!   economics (latency floor, parallelism-dependent throughput,
//!   coalescing) with seeded disturbances (spikes, throttles,
//!   brownouts).
//! - [`shard`] — [`shard::ShardedMap`], the N-way sharded concurrent
//!   map behind every structure the fetch hot path touches, so readers
//!   of different samples never contend on one lock word.
//! - [`resilience`] — the full failure domain over any source:
//!   [`resilience::ResilientSource`] composes per-read deadlines,
//!   hedged requests, taxonomy-aware retry, and a circuit breaker,
//!   surfacing [`resilience::ResilienceStats`] next to the per-tier
//!   [`tier::TierStats`].

pub mod backend;
pub mod fault;
pub mod metadata;
pub mod objectstore;
pub mod reorder;
pub mod resilience;
pub mod shard;
pub mod staging;
pub mod tier;

pub use backend::{FsBackend, MemoryBackend, StorageBackend, ThrottledBackend};
pub use fault::{ErrorInjection, FaultySource, RetryPolicy, RetryingSource};
pub use metadata::MetadataStore;
pub use objectstore::{
    BrownoutWindow, Disturbance, ObjectStoreBackend, ObjectStoreConfig, ObjectStoreStats,
};
pub use reorder::ReorderStage;
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, HedgeConfig, ResilienceConfig, ResilienceStats,
    ResilientSource,
};
pub use shard::{ShardedMap, DEFAULT_SHARDS};
pub use staging::{ProducerGuard, ProducerLost, StagingBuffer, StagingStats};
pub use tier::{
    build_stack, build_stack_in_registry, DataSource, ErrorClass, PromotePolicy, SourceError,
    SourceHealth, TierSpec, TierStack, TierStats,
};

/// Sample identifier (dense index into the dataset).
pub type SampleId = u64;
