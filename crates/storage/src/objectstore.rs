//! An object-store origin tier: S3-like request economics behind the
//! [`DataSource`] trait.
//!
//! Training fleets increasingly read datasets from object stores whose
//! behavior is nothing like a PFS (arxiv 2108.06322): every request
//! pays a **latency floor** regardless of size, aggregate throughput is
//! **parallelism-dependent** (a single stream cannot saturate the
//! fabric), small adjacent objects are cheaper **coalesced** into range
//! requests, and the service misbehaves in characteristic ways — tail
//! **latency spikes**, explicit **throttling** (HTTP 503 "slow down"),
//! and **brownout windows** where both get worse at once.
//!
//! [`ObjectStoreBackend`] models all of that over any inner
//! [`DataSource`] (an in-memory object map, or the synthetic PFS when
//! the runtime treats the cloud store as the true origin). The
//! disturbance model is fully seeded and *bounded*: throttle bursts use
//! the same bounded-burst-plus-cooldown scheme as
//! [`crate::FaultySource`], so a retry budget above the burst bound is
//! guaranteed to succeed — disturbances change *when* bytes arrive,
//! never *which* bytes, which is what keeps disturbed global sample
//! streams bit-identical to fault-free runs.

use crate::fault::unit;
use crate::tier::{DataSource, SourceError};
use crate::SampleId;
use bytes::Bytes;
use nopfs_perfmodel::ThroughputCurve;
use nopfs_util::rate::TokenBucket;
use nopfs_util::rng::mix64;
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One window of degraded service, in model-seconds since the store
/// was built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutWindow {
    /// Window start, model seconds.
    pub start: f64,
    /// Window length, model seconds.
    pub duration: f64,
    /// Latency multiplier (and throughput divisor) inside the window
    /// (≥ 1).
    pub latency_factor: f64,
    /// Additional probability that a request inside the window opens a
    /// throttle burst.
    pub throttle_rate: f64,
}

impl BrownoutWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: f64) -> bool {
        now >= self.start && now < self.start + self.duration
    }
}

/// Seeded disturbance model: spikes, throttles, brownouts.
#[derive(Debug, Clone, PartialEq)]
pub struct Disturbance {
    /// Probability that a request draws a tail-latency spike.
    pub spike_rate: f64,
    /// Latency multiplier of a spiked request (≥ 1).
    pub spike_factor: f64,
    /// Baseline probability that a fresh request opens a throttle
    /// burst.
    pub throttle_rate: f64,
    /// Maximum consecutive [`SourceError::Throttled`] responses per
    /// sample (≥ 1); one clean read is guaranteed after each burst.
    pub throttle_burst: u32,
    /// `retry_after` hint attached to throttle responses, model
    /// seconds.
    pub retry_after: f64,
    /// Scheduled brownout windows.
    pub brownouts: Vec<BrownoutWindow>,
    /// Seed of the spike/throttle pattern.
    pub seed: u64,
}

impl Disturbance {
    /// A quiet model: no spikes, no throttles, no brownouts.
    pub fn none(seed: u64) -> Self {
        Self {
            spike_rate: 0.0,
            spike_factor: 1.0,
            throttle_rate: 0.0,
            throttle_burst: 1,
            retry_after: 0.0,
            brownouts: Vec::new(),
            seed,
        }
    }

    /// Latency factor and extra throttle probability at model time
    /// `now` (the strongest active brownout wins).
    pub fn brownout_at(&self, now: f64) -> (f64, f64) {
        let mut factor = 1.0f64;
        let mut throttle = 0.0f64;
        for w in &self.brownouts {
            if w.contains(now) {
                factor = factor.max(w.latency_factor);
                throttle = throttle.max(w.throttle_rate);
            }
        }
        (factor, throttle)
    }

    /// Validates rates and factors.
    ///
    /// # Errors
    /// A description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.spike_rate) {
            return Err(format!("spike_rate {} outside [0, 1)", self.spike_rate));
        }
        if self.spike_factor < 1.0 {
            return Err(format!("spike_factor {} below 1", self.spike_factor));
        }
        if !(0.0..1.0).contains(&self.throttle_rate) {
            return Err(format!(
                "throttle_rate {} outside [0, 1)",
                self.throttle_rate
            ));
        }
        if self.throttle_burst < 1 {
            return Err("throttle_burst must be at least 1".into());
        }
        if self.retry_after < 0.0 {
            return Err(format!("retry_after {} negative", self.retry_after));
        }
        for (i, w) in self.brownouts.iter().enumerate() {
            if w.start < 0.0 || w.duration < 0.0 {
                return Err(format!("brownout {i} has a negative start or duration"));
            }
            if w.latency_factor < 1.0 {
                return Err(format!("brownout {i} latency_factor below 1"));
            }
            if !(0.0..1.0).contains(&w.throttle_rate) {
                return Err(format!("brownout {i} throttle_rate outside [0, 1)"));
            }
        }
        Ok(())
    }
}

/// Object-store performance parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectStoreConfig {
    /// Per-request latency floor, model seconds (time-to-first-byte).
    pub latency_floor: f64,
    /// Aggregate throughput as a function of concurrent requests,
    /// model bytes/s.
    pub curve: ThroughputCurve,
    /// Longest run of adjacent sample ids [`DataSource::read_many`]
    /// merges into one request (≥ 1; 1 disables coalescing).
    pub max_coalesce: usize,
    /// Disturbances; `None` = ideally behaved store.
    pub disturbance: Option<Disturbance>,
}

impl ObjectStoreConfig {
    /// A well-behaved store.
    ///
    /// # Panics
    /// Panics on a negative latency floor or zero `max_coalesce`.
    pub fn new(latency_floor: f64, curve: ThroughputCurve, max_coalesce: usize) -> Self {
        assert!(
            latency_floor.is_finite() && latency_floor >= 0.0,
            "latency floor must be non-negative"
        );
        assert!(max_coalesce >= 1, "max_coalesce must be at least 1");
        Self {
            latency_floor,
            curve,
            max_coalesce,
            disturbance: None,
        }
    }

    /// Adds a disturbance model.
    ///
    /// # Panics
    /// Panics when the disturbance fails validation.
    #[must_use]
    pub fn with_disturbance(mut self, disturbance: Disturbance) -> Self {
        disturbance.validate().expect("valid disturbance");
        self.disturbance = Some(disturbance);
        self
    }
}

/// Request-level statistics of an [`ObjectStoreBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectStoreStats {
    /// Requests issued (a coalesced run counts once).
    pub requests: u64,
    /// Samples served.
    pub samples: u64,
    /// Samples that rode along in a coalesced request instead of
    /// paying their own latency floor.
    pub coalesced_samples: u64,
    /// Requests that drew a tail-latency spike.
    pub spikes: u64,
    /// [`SourceError::Throttled`] responses returned.
    pub throttled: u64,
    /// Requests served inside a brownout window.
    pub brownout_requests: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct ThrottleState {
    /// Throttled responses still owed in the current burst.
    pending: u32,
    /// Bursts drawn so far (the per-id draw counter).
    draws: u64,
    /// One clean read is guaranteed after a burst.
    cooldown: bool,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    samples: AtomicU64,
    coalesced_samples: AtomicU64,
    spikes: AtomicU64,
    throttled: AtomicU64,
    brownout_requests: AtomicU64,
}

/// The object-store origin tier: wraps any [`DataSource`] holding the
/// objects and charges S3-like request costs on every read — latency
/// floor, parallelism-dependent throughput (more concurrent requests,
/// more aggregate bandwidth, exactly the `t(γ)` idiom of the synthetic
/// PFS), coalescing for adjacent ids, and the seeded disturbances of
/// its [`ObjectStoreConfig`].
pub struct ObjectStoreBackend {
    name: String,
    inner: Arc<dyn DataSource>,
    cfg: ObjectStoreConfig,
    scale: TimeScale,
    /// Concurrent requests in flight (the throughput curve's γ).
    inflight: AtomicU64,
    /// Shared bandwidth regulator, re-rated as requests enter/leave.
    regulator: TokenBucket,
    /// Construction instant: brownout windows are positioned in model
    /// time relative to it.
    start: Instant,
    throttle: Mutex<HashMap<SampleId, ThrottleState>>,
    spike_draws: AtomicU64,
    counters: Counters,
}

impl std::fmt::Debug for ObjectStoreBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStoreBackend")
            .field("name", &self.name)
            .field("inner", &self.inner.name())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ObjectStoreBackend {
    /// Wraps `inner` (the store actually holding the objects) with
    /// object-store request economics.
    pub fn over(inner: Arc<dyn DataSource>, cfg: ObjectStoreConfig, scale: TimeScale) -> Self {
        let initial = scale.rate_to_wall(cfg.curve.at(1.0)).max(1.0);
        Self {
            name: "objectstore".to_string(),
            inner,
            cfg,
            scale,
            inflight: AtomicU64::new(0),
            regulator: TokenBucket::with_burst_window(initial, 0.01),
            start: Instant::now(),
            throttle: Mutex::new(HashMap::new()),
            spike_draws: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// A standalone store over an unbounded in-memory object map
    /// (benches and tests).
    pub fn in_memory(cfg: ObjectStoreConfig, scale: TimeScale) -> Self {
        Self::over(
            Arc::new(crate::backend::MemoryBackend::new("objects", u64::MAX)),
            cfg,
            scale,
        )
    }

    /// Request-level statistics snapshot.
    pub fn stats(&self) -> ObjectStoreStats {
        let c = &self.counters;
        ObjectStoreStats {
            requests: c.requests.load(Ordering::Relaxed),
            samples: c.samples.load(Ordering::Relaxed),
            coalesced_samples: c.coalesced_samples.load(Ordering::Relaxed),
            spikes: c.spikes.load(Ordering::Relaxed),
            throttled: c.throttled.load(Ordering::Relaxed),
            brownout_requests: c.brownout_requests.load(Ordering::Relaxed),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &ObjectStoreConfig {
        &self.cfg
    }

    /// Model time since construction.
    fn now(&self) -> f64 {
        self.scale.to_model(self.start.elapsed())
    }

    /// Whether reading `id` now draws a throttle (and the burst
    /// bookkeeping). `extra` is the active brownout's additional rate.
    fn throttled(&self, id: SampleId, extra: f64) -> bool {
        let Some(d) = &self.cfg.disturbance else {
            return false;
        };
        let rate = (d.throttle_rate + extra).min(0.999_999);
        if rate <= 0.0 {
            return false;
        }
        let mut map = self.throttle.lock();
        let s = map.entry(id).or_default();
        if s.pending > 0 {
            s.pending -= 1;
            s.cooldown = s.pending == 0;
            return true;
        }
        if s.cooldown {
            s.cooldown = false;
            return false;
        }
        let h = mix64(d.seed ^ 0x7407_71E5, mix64(id, s.draws));
        s.draws += 1;
        if unit(h) < rate {
            s.pending = (h >> 32) as u32 % d.throttle_burst;
            s.cooldown = s.pending == 0;
            return true;
        }
        false
    }

    /// Pays one request's latency floor (spikes and brownouts applied)
    /// and returns the brownout throughput divisor in force.
    fn pay_latency(&self, now: f64) -> f64 {
        let mut latency = self.cfg.latency_floor;
        let mut slowdown = 1.0;
        if let Some(d) = &self.cfg.disturbance {
            let (factor, _) = d.brownout_at(now);
            if factor > 1.0 {
                self.counters
                    .brownout_requests
                    .fetch_add(1, Ordering::Relaxed);
            }
            slowdown = factor;
            if d.spike_rate > 0.0 {
                let draw = self.spike_draws.fetch_add(1, Ordering::Relaxed);
                if unit(mix64(d.seed ^ 0x5917_CE00, draw)) < d.spike_rate {
                    self.counters.spikes.fetch_add(1, Ordering::Relaxed);
                    latency *= d.spike_factor;
                }
            }
        }
        self.scale.wait(latency * slowdown);
        slowdown
    }

    /// Performs one request for the adjacent run `ids`: one latency
    /// floor, per-id throttle checks, shared-bandwidth byte costs.
    fn request(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        let now = self.now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .samples
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.counters
            .coalesced_samples
            .fetch_add(ids.len() as u64 - 1, Ordering::Relaxed);

        let extra_throttle = self
            .cfg
            .disturbance
            .as_ref()
            .map_or(0.0, |d| d.brownout_at(now).1);
        let guard = RequestGuard::enter(self, 1.0);
        let slowdown = self.pay_latency(now);
        // Brownouts also depress throughput: re-rate for this request's
        // lifetime (the guard re-rates again on exit).
        if slowdown > 1.0 {
            guard.rerate(slowdown);
        }
        ids.iter()
            .map(|&id| {
                if self.throttled(id, extra_throttle) {
                    self.counters.throttled.fetch_add(1, Ordering::Relaxed);
                    let retry_after = self
                        .cfg
                        .disturbance
                        .as_ref()
                        .map_or(Duration::ZERO, |d| self.scale.to_wall(d.retry_after));
                    return Err(SourceError::Throttled { retry_after });
                }
                let data = self.inner.read(id)?;
                self.regulator.acquire(data.len() as u64);
                Ok(data)
            })
            .collect()
    }
}

/// RAII guard tracking one in-flight request: entering re-rates the
/// shared regulator to the curve at the new concurrency (the `t(γ)`
/// idiom), leaving re-rates it back down.
struct RequestGuard<'a> {
    store: &'a ObjectStoreBackend,
}

impl<'a> RequestGuard<'a> {
    fn enter(store: &'a ObjectStoreBackend, slowdown: f64) -> Self {
        let inflight = store.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        store.regulator.set_rate(
            store
                .scale
                .rate_to_wall(store.cfg.curve.at(inflight as f64) / slowdown)
                .max(1.0),
        );
        Self { store }
    }

    fn rerate(&self, slowdown: f64) {
        let inflight = self.store.inflight.load(Ordering::SeqCst).max(1);
        self.store.regulator.set_rate(
            self.store
                .scale
                .rate_to_wall(self.store.cfg.curve.at(inflight as f64) / slowdown)
                .max(1.0),
        );
    }
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        let prev = self.store.inflight.fetch_sub(1, Ordering::SeqCst);
        let remaining = prev.saturating_sub(1).max(1);
        self.store.regulator.set_rate(
            self.store
                .scale
                .rate_to_wall(self.store.cfg.curve.at(remaining as f64))
                .max(1.0),
        );
    }
}

impl DataSource for ObjectStoreBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        self.request(&[id]).pop().expect("one id, one result")
    }

    fn read_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        // Coalesce runs of adjacent ids into single requests: each run
        // pays one latency floor instead of one per sample.
        let mut out = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            let mut j = i + 1;
            while j < ids.len() && j - i < self.cfg.max_coalesce && ids[j] == ids[j - 1] + 1 {
                j += 1;
            }
            out.extend(self.request(&ids[i..j]));
            i = j;
        }
        out
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        // PUTs pay the request latency too, but are never disturbed
        // (the harnesses materialize datasets before the clock starts).
        self.scale.wait(self.cfg.latency_floor);
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, StorageBackend};

    fn objects(n: u64, size: usize) -> Arc<dyn DataSource> {
        let m = MemoryBackend::new("objects", u64::MAX);
        for id in 0..n {
            m.insert(id, Bytes::from(vec![(id % 251) as u8; size]))
                .unwrap();
        }
        Arc::new(m)
    }

    /// A fast config: microsecond-scale model times under a realtime
    /// scale keep tests quick.
    fn quick_cfg(latency: f64) -> ObjectStoreConfig {
        ObjectStoreConfig::new(latency, ThroughputCurve::flat(1e12), 8)
    }

    #[test]
    fn reads_serve_correct_bytes_and_count_requests() {
        let store = ObjectStoreBackend::over(objects(8, 16), quick_cfg(0.0), TimeScale::realtime());
        for id in 0..8u64 {
            assert_eq!(store.read(id).unwrap()[0], (id % 251) as u8);
        }
        let s = store.stats();
        assert_eq!((s.requests, s.samples, s.coalesced_samples), (8, 8, 0));
        assert!(matches!(store.read(99), Err(SourceError::NotFound(99))));
    }

    #[test]
    fn latency_floor_is_paid_per_request() {
        // 2 ms model floor at realtime scale: 10 reads ≥ 20 ms.
        let store =
            ObjectStoreBackend::over(objects(10, 4), quick_cfg(0.002), TimeScale::realtime());
        let t0 = Instant::now();
        for id in 0..10u64 {
            store.read(id).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn coalescing_merges_adjacent_runs_and_pays_one_floor_per_run() {
        let store =
            ObjectStoreBackend::over(objects(32, 8), quick_cfg(0.003), TimeScale::realtime());
        // Two adjacent runs (0..8, 20..24) and one singleton.
        let ids: Vec<u64> = (0..8).chain([15]).chain(20..24).collect();
        let t0 = Instant::now();
        let results = store.read_many(&ids);
        let elapsed = t0.elapsed();
        assert_eq!(results.len(), ids.len());
        for (r, &id) in results.iter().zip(&ids) {
            assert_eq!(r.as_ref().unwrap()[0], (id % 251) as u8);
        }
        let s = store.stats();
        assert_eq!(s.requests, 3, "three coalesced requests");
        assert_eq!(s.samples, 13);
        assert_eq!(s.coalesced_samples, 10);
        // Three floors (9 ms), not thirteen (39 ms).
        assert!(elapsed >= Duration::from_millis(9));
        assert!(elapsed < Duration::from_millis(39));
    }

    #[test]
    fn coalescing_respects_the_run_cap() {
        let mut cfg = quick_cfg(0.0);
        cfg.max_coalesce = 4;
        let store = ObjectStoreBackend::over(objects(16, 8), cfg, TimeScale::realtime());
        let ids: Vec<u64> = (0..10).collect();
        store.read_many(&ids);
        assert_eq!(store.stats().requests, 3, "10 adjacent ids in runs of 4");
    }

    #[test]
    fn throttle_bursts_are_bounded_deterministic_and_carry_retry_after() {
        let disturbance = Disturbance {
            throttle_rate: 0.3,
            throttle_burst: 2,
            retry_after: 1e-6,
            ..Disturbance::none(0xCAFE)
        };
        let run = || {
            let store = ObjectStoreBackend::over(
                objects(4, 8),
                quick_cfg(0.0).with_disturbance(disturbance.clone()),
                TimeScale::realtime(),
            );
            let mut outcomes = Vec::new();
            for _ in 0..100 {
                for id in 0..4u64 {
                    outcomes.push(store.read(id).is_ok());
                }
            }
            (outcomes, store.stats().throttled)
        };
        let (a, throttled) = run();
        let (b, _) = run();
        assert_eq!(a, b, "same seed, same throttle pattern");
        assert!(throttled > 0, "rate 0.3 over 400 reads must throttle");
        // Bounded per id: never more than 2 consecutive throttles.
        for id in 0..4usize {
            let per_id: Vec<bool> = a.iter().skip(id).step_by(4).copied().collect();
            let mut consecutive = 0;
            for ok in per_id {
                if ok {
                    consecutive = 0;
                } else {
                    consecutive += 1;
                    assert!(consecutive <= 2, "burst bound exceeded on {id}");
                }
            }
        }
        // The error carries the server's retry_after hint.
        let store = ObjectStoreBackend::over(
            objects(1, 8),
            quick_cfg(0.0).with_disturbance(Disturbance {
                throttle_rate: 0.999,
                ..disturbance
            }),
            TimeScale::realtime(),
        );
        let mut saw_throttle = false;
        for _ in 0..10 {
            if let Err(SourceError::Throttled { retry_after }) = store.read(0) {
                assert_eq!(retry_after, Duration::from_micros(1));
                saw_throttle = true;
            }
        }
        assert!(saw_throttle);
    }

    #[test]
    fn brownout_window_slows_requests_inside_it_only() {
        // Window [0, 0.05) model-seconds at realtime scale, 10× factor
        // on a 2 ms floor: early reads pay ≥ 20 ms, late reads 2 ms.
        let store = ObjectStoreBackend::over(
            objects(4, 8),
            quick_cfg(0.002).with_disturbance(Disturbance {
                brownouts: vec![BrownoutWindow {
                    start: 0.0,
                    duration: 0.05,
                    latency_factor: 10.0,
                    throttle_rate: 0.0,
                }],
                ..Disturbance::none(1)
            }),
            TimeScale::realtime(),
        );
        let t0 = Instant::now();
        store.read(0).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "browned-out read"
        );
        assert!(store.stats().brownout_requests >= 1);
        std::thread::sleep(Duration::from_millis(60));
        let t1 = Instant::now();
        store.read(1).unwrap();
        let fast = t1.elapsed();
        assert!(fast < Duration::from_millis(20), "recovered read: {fast:?}");
    }

    #[test]
    fn parallel_requests_raise_aggregate_throughput() {
        // Curve: 1 request = 1 MB/s, 8 requests = 8 MB/s aggregate.
        // Reading 8 × 100 KB serially ≈ 800 ms; in parallel ≈ 100 ms.
        let curve = ThroughputCurve::from_points(&[(1.0, 1e6), (8.0, 8e6)]);
        let store = Arc::new(ObjectStoreBackend::over(
            objects(8, 100_000),
            ObjectStoreConfig::new(0.0, curve, 1),
            TimeScale::realtime(),
        ));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for id in 0..8u64 {
                let store = Arc::clone(&store);
                s.spawn(move || store.read(id).unwrap());
            }
        });
        let parallel = t0.elapsed();
        assert!(
            parallel < Duration::from_millis(500),
            "parallelism must beat the serial 800 ms: {parallel:?}"
        );
    }

    #[test]
    fn spikes_are_seeded_and_only_stretch_latency() {
        let store = ObjectStoreBackend::over(
            objects(4, 8),
            quick_cfg(1e-6).with_disturbance(Disturbance {
                spike_rate: 0.5,
                spike_factor: 3.0,
                ..Disturbance::none(9)
            }),
            TimeScale::realtime(),
        );
        for _ in 0..50 {
            for id in 0..4u64 {
                assert_eq!(store.read(id).unwrap()[0], id as u8, "bytes unchanged");
            }
        }
        assert!(store.stats().spikes > 0, "rate 0.5 must spike");
    }

    #[test]
    fn disturbance_validation_rejects_nonsense() {
        assert!(Disturbance {
            spike_rate: 1.5,
            ..Disturbance::none(0)
        }
        .validate()
        .is_err());
        assert!(Disturbance {
            spike_factor: 0.5,
            ..Disturbance::none(0)
        }
        .validate()
        .is_err());
        assert!(Disturbance {
            brownouts: vec![BrownoutWindow {
                start: -1.0,
                duration: 1.0,
                latency_factor: 2.0,
                throttle_rate: 0.0,
            }],
            ..Disturbance::none(0)
        }
        .validate()
        .is_err());
        assert!(Disturbance::none(0).validate().is_ok());
    }
}
