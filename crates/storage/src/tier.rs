//! The tiered data-source hierarchy: one read/write interface from
//! worker RAM down to the shared parallel filesystem.
//!
//! The paper's placement reasons about a *multi-level* storage
//! hierarchy — staging buffer, RAM, node-local SSD, the PFS — yet the
//! original fetch path only knew two concrete types. [`DataSource`] is
//! the unifying interface: every level of the hierarchy (the
//! [`crate::backend`] implementations here, the synthetic PFS in
//! `nopfs_pfs`, or any future cold object store) exposes the same
//! capacity-aware read/write/evict surface, and [`TierStack`] composes
//! an ordered list of them — fastest first, the *origin* (authoritative
//! store holding the whole dataset) last — into a single fetch entry
//! point, [`TierStack::read`].
//!
//! Every read records per-tier hit/miss/byte statistics
//! ([`TierStats`]); on a miss in the upper tiers the stack *promotes*
//! the sample upward according to its [`PromotePolicy`]. Placement-
//! driven fills ([`TierStack::fill`], NoPFS's clairvoyant assignments)
//! are pinned; only read-path promotions are eligible for read-path
//! eviction, so a generic caching stack and the clairvoyant runtime
//! coexist on one type.

use crate::backend::{BackendError, MemoryBackend, StorageBackend, ThrottledBackend};
use crate::metadata::MetadataStore;
use crate::shard::ShardedMap;
use crate::SampleId;
use bytes::Bytes;
use nopfs_obs::{names, Counter, Histogram, Registry};
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Errors a [`DataSource`] read or write can produce.
///
/// Every variant carries a retryability class ([`SourceError::class`]):
/// resilience layers decide *whether* and *how* to retry from the
/// class, never from string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The source does not hold this sample (permanent).
    NotFound(SampleId),
    /// The sample would exceed the source's capacity (permanent).
    Full {
        /// Bytes the write needed.
        needed: u64,
        /// Bytes still free.
        available: u64,
    },
    /// Underlying (or injected) I/O failure (transient).
    Io(String),
    /// The backend shed this request under load; retry no sooner than
    /// `retry_after` (throttled — retryable, but on the server's
    /// schedule, not the client's backoff curve).
    Throttled {
        /// Server-suggested minimum wait before the next attempt.
        retry_after: std::time::Duration,
    },
    /// The read did not complete within the caller's deadline
    /// (retryable: the next attempt races a fresh deadline).
    DeadlineExceeded {
        /// The deadline that expired.
        deadline: std::time::Duration,
    },
    /// The backend is out of service — a circuit breaker is open or the
    /// source is administratively down. Fail-fast: callers should
    /// degrade to another source rather than retry in place.
    Unavailable(String),
}

/// Retryability classes of a [`SourceError`], the contract between
/// error producers (backends, injectors) and the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying after client-side backoff ([`SourceError::Io`]).
    Transient,
    /// Worth retrying after the server-suggested wait
    /// ([`SourceError::Throttled`]).
    Throttled,
    /// Worth retrying against a fresh deadline
    /// ([`SourceError::DeadlineExceeded`]).
    DeadlineExceeded,
    /// Never worth retrying in place ([`SourceError::NotFound`],
    /// [`SourceError::Full`], [`SourceError::Unavailable`]).
    Permanent,
}

impl SourceError {
    /// This error's retryability class.
    pub fn class(&self) -> ErrorClass {
        match self {
            SourceError::Io(_) => ErrorClass::Transient,
            SourceError::Throttled { .. } => ErrorClass::Throttled,
            SourceError::DeadlineExceeded { .. } => ErrorClass::DeadlineExceeded,
            SourceError::NotFound(_) | SourceError::Full { .. } | SourceError::Unavailable(_) => {
                ErrorClass::Permanent
            }
        }
    }

    /// Whether retrying the same source can ever help.
    pub fn is_retryable(&self) -> bool {
        self.class() != ErrorClass::Permanent
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::NotFound(id) => write!(f, "sample {id} not found"),
            SourceError::Full { needed, available } => {
                write!(f, "source full: need {needed} bytes, {available} free")
            }
            SourceError::Io(msg) => write!(f, "I/O error: {msg}"),
            SourceError::Throttled { retry_after } => {
                write!(f, "throttled: retry after {retry_after:?}")
            }
            SourceError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            SourceError::Unavailable(msg) => write!(f, "source unavailable: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Coarse liveness of a [`DataSource`], surfaced so fetch paths can
/// steer around a failing backend *before* paying a read into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceHealth {
    /// Serving normally.
    #[default]
    Healthy,
    /// Serving, but a resilience layer is probing it (half-open
    /// breaker) or absorbing elevated failures.
    Degraded,
    /// Not serving: an open circuit breaker is failing reads fast.
    Unavailable,
}

impl From<BackendError> for SourceError {
    fn from(e: BackendError) -> Self {
        match e {
            BackendError::Full { needed, available } => SourceError::Full { needed, available },
            BackendError::Io(msg) => SourceError::Io(msg),
        }
    }
}

/// One level of the storage hierarchy: a keyed byte store with optional
/// capacity. Implemented by the local backends here, by `nopfs_pfs::Pfs`
/// (the shared filesystem with its `t(γ)` regulator), and by anything
/// else that wants to slot into a [`TierStack`].
pub trait DataSource: Send + Sync {
    /// Human-readable tier name ("ram", "ssd", "pfs", …).
    fn name(&self) -> &str;

    /// Reads a sample, paying the source's modelled cost.
    ///
    /// # Errors
    /// [`SourceError::NotFound`] when absent, [`SourceError::Io`] on
    /// (possibly injected) failures.
    fn read(&self, id: SampleId) -> Result<Bytes, SourceError>;

    /// Stores a sample, paying the source's modelled write cost.
    ///
    /// # Errors
    /// [`SourceError::Full`] when it does not fit.
    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError>;

    /// Whether the sample is present (metadata only; free).
    fn contains(&self, id: SampleId) -> bool;

    /// Capacity in bytes; `None` for unbounded stores (origins).
    fn capacity(&self) -> Option<u64>;

    /// Bytes currently stored.
    fn used(&self) -> u64;

    /// Removes a sample, returning whether it was present.
    fn evict(&self, id: SampleId) -> bool;

    /// Number of stored samples.
    fn count(&self) -> usize;

    /// Size in bytes of a stored sample (metadata only; free).
    fn size_of(&self, id: SampleId) -> Option<u64>;

    /// Reads a batch of samples, one result per id, in order.
    ///
    /// The default loops over [`DataSource::read`]; sources with
    /// per-request overhead (object stores) override it to *coalesce*
    /// adjacent ids into fewer requests.
    fn read_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        ids.iter().map(|&id| self.read(id)).collect()
    }

    /// Coarse liveness, for callers that want to steer around a
    /// failing source. Plain stores are always [`SourceHealth::Healthy`];
    /// resilience wrappers report their circuit-breaker state.
    fn health(&self) -> SourceHealth {
        SourceHealth::Healthy
    }

    /// Resilience counters (retries, hedges, breaker transitions), when
    /// a resilience layer wraps this source; `None` for plain stores.
    fn resilience(&self) -> Option<crate::resilience::ResilienceStats> {
        None
    }
}

/// Every [`StorageBackend`] is a [`DataSource`]: the method sets
/// coincide except that reads/writes surface `Result`s and capacity is
/// always bounded. (Non-backend sources — the PFS, cold object stores
/// — implement [`DataSource`] directly.)
impl<B: StorageBackend> DataSource for B {
    fn name(&self) -> &str {
        StorageBackend::name(self)
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        StorageBackend::get(self, id).ok_or(SourceError::NotFound(id))
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        StorageBackend::insert(self, id, data).map_err(SourceError::from)
    }

    fn contains(&self, id: SampleId) -> bool {
        StorageBackend::contains(self, id)
    }

    fn capacity(&self) -> Option<u64> {
        Some(StorageBackend::capacity(self))
    }

    fn used(&self) -> u64 {
        StorageBackend::used(self)
    }

    fn evict(&self, id: SampleId) -> bool {
        StorageBackend::evict(self, id)
    }

    fn count(&self) -> usize {
        StorageBackend::count(self)
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        StorageBackend::size_of(self, id)
    }
}

/// Cumulative per-tier statistics, snapshotted by [`TierStack::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Tier name (from the source).
    pub name: String,
    /// Reads served by this tier.
    pub hits: u64,
    /// Reads that had to look further down the stack.
    pub misses: u64,
    /// Bytes served by this tier.
    pub bytes_read: u64,
    /// Samples written into this tier (fills + promotions).
    pub fills: u64,
    /// Bytes written into this tier.
    pub bytes_filled: u64,
    /// Fills that came from read-path promotion.
    pub promotions: u64,
    /// Fills that came from a faster tier demoting its eviction victim
    /// here (spill absorption).
    pub demotions: u64,
    /// Samples evicted from this tier (read-path eviction plus explicit
    /// [`TierStack::evict`] calls).
    pub evictions: u64,
    /// Bytes evicted from this tier.
    pub bytes_evicted: u64,
    /// Tier capacity (`None` = unbounded origin).
    pub capacity: Option<u64>,
    /// Bytes resident when the snapshot was taken.
    pub used: u64,
}

impl TierStats {
    /// Hit fraction of all reads that consulted this tier.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (for aggregating the same tier
    /// across ranks). Counters, capacities, and residency add, so the
    /// merged row reads as the aggregate tier across the cluster; an
    /// unbounded origin (`capacity: None`) keeps the merge unbounded.
    pub fn merge(&mut self, other: &TierStats) {
        debug_assert_eq!(self.name, other.name, "merge is per-tier");
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_read += other.bytes_read;
        self.fills += other.fills;
        self.bytes_filled += other.bytes_filled;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
        self.capacity = match (self.capacity, other.capacity) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        self.used += other.used;
    }
}

/// Per-tier counters, registered as `tier.*` metrics (labelled
/// `tier=<name>`) in the stack's obs registry — [`TierStats`] is the
/// typed view over them.
///
/// The registry is cumulative: a stack rebuilt against the same
/// registry (an elastic worker restarting cold after a crash) reuses
/// the existing counters. Each `Counters` therefore snapshots a
/// baseline at construction and the stats view reports deltas, so a
/// stack's [`TierStats`] covers exactly its own lifetime while
/// telemetry sees running totals.
#[derive(Debug)]
struct Counters {
    hits: Counter,
    misses: Counter,
    bytes_read: Counter,
    fills: Counter,
    bytes_filled: Counter,
    promotions: Counter,
    demotions: Counter,
    evictions: Counter,
    bytes_evicted: Counter,
    /// Per-read service latency (ns), recorded on hits.
    read_latency: Histogram,
    /// Registry values at construction, subtracted from stats views.
    base: [u64; 9],
}

impl Counters {
    fn new(registry: &Registry, tier_name: &str) -> Self {
        let labels = [("tier", tier_name)];
        let mut c = Self {
            hits: registry.counter_with(names::TIER_HITS, &labels),
            misses: registry.counter_with(names::TIER_MISSES, &labels),
            bytes_read: registry.counter_with(names::TIER_BYTES_READ, &labels),
            fills: registry.counter_with(names::TIER_FILLS, &labels),
            bytes_filled: registry.counter_with(names::TIER_BYTES_FILLED, &labels),
            promotions: registry.counter_with(names::TIER_PROMOTIONS, &labels),
            demotions: registry.counter_with(names::TIER_DEMOTIONS, &labels),
            evictions: registry.counter_with(names::TIER_EVICTIONS, &labels),
            bytes_evicted: registry.counter_with(names::TIER_BYTES_EVICTED, &labels),
            read_latency: registry.histogram_with(names::TIER_READ_LATENCY, &labels),
            base: [0; 9],
        };
        c.base = c.totals();
        c
    }

    /// Raw cumulative registry values, in [`Self::base`] field order.
    fn totals(&self) -> [u64; 9] {
        [
            self.hits.get(),
            self.misses.get(),
            self.bytes_read.get(),
            self.fills.get(),
            self.bytes_filled.get(),
            self.promotions.get(),
            self.demotions.get(),
            self.evictions.get(),
            self.bytes_evicted.get(),
        ]
    }

    /// Values since this stack was built (registry minus baseline).
    fn since_build(&self) -> [u64; 9] {
        let mut t = self.totals();
        for (v, b) in t.iter_mut().zip(&self.base) {
            *v -= b;
        }
        t
    }
}

/// What [`TierStack::read`] does when a sample is found below the top
/// tier (or only at the origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromotePolicy {
    /// Never promote: placement is managed externally (the clairvoyant
    /// runtime plans every fill itself via [`TierStack::fill`]).
    Never,
    /// Promote into the topmost tier with free space; skip tiers that
    /// are full.
    #[default]
    IfFits,
    /// Promote into the topmost tier, evicting earlier read-path
    /// promotions (FIFO) to make room; victims *demote* into the next
    /// tier down with free space (spill absorption) rather than being
    /// dropped. Pinned fills are never evicted.
    Evicting,
}

/// Read-path promotions resident in a tier, FIFO by promotion order —
/// the only entries [`PromotePolicy::Evicting`] may remove.
///
/// The old representation — one `Mutex<VecDeque>` scanned with
/// `retain`/`contains` — made every eviction and every promotion an
/// O(n) walk under a global lock, on the hot path. This one is
/// epoch-stamped and sharded:
///
/// - **Membership** is a [`ShardedMap`] `id → (epoch, size)` — O(1)
///   `contains`/`remove` with no queue scan, under only the id's shard
///   lock.
/// - **FIFO order** lives in per-shard queues of `(id, epoch)`. A
///   removal (or re-promotion, which bumps the epoch) does not touch
///   the queue; the stale entry is lazily skipped when it surfaces at a
///   queue head, because its epoch no longer matches the membership
///   map. [`Self::pop_oldest`] pops the minimum-epoch head across
///   shards, so global FIFO order is exact, not approximate.
/// - **Evictable bytes** is a running atomic, replacing the O(n)
///   size-sum `make_room` used to do under the queue lock.
#[derive(Debug, Default)]
struct PromotedSet {
    /// `id → (epoch, size)`: present iff the id is an evictable
    /// read-path resident; the epoch names its live queue entry.
    members: ShardedMap<(u64, u64)>,
    /// Per-shard FIFO of `(id, epoch)`; entries whose epoch no longer
    /// matches `members` are stale and skipped at pop.
    queues: Vec<Mutex<VecDeque<(SampleId, u64)>>>,
    /// Monotonic stamp source; higher epoch = promoted later.
    epoch: AtomicU64,
    /// Total bytes of live members.
    bytes: AtomicU64,
}

impl PromotedSet {
    fn new() -> Self {
        let members = ShardedMap::new();
        let queues = (0..members.shard_count())
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        Self {
            members,
            queues,
            epoch: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Whether `id` is a live evictable resident. O(1).
    fn contains(&self, id: SampleId) -> bool {
        self.members.contains(id)
    }

    /// Total bytes of live members (the budget read-path eviction can
    /// ever free). O(1).
    fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Marks `id` as an evictable resident of `size` bytes, last in
    /// FIFO order. Re-pushing bumps the epoch, which invalidates the
    /// previous queue entry in place. O(1).
    fn push(&self, id: SampleId, size: u64) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((_, old_size)) = self.members.insert(id, (epoch, size)) {
            self.bytes.fetch_sub(old_size, Ordering::Relaxed);
        }
        self.bytes.fetch_add(size, Ordering::Relaxed);
        let mut q = self.queues[self.members.index_of(id)].lock();
        // Opportunistically reap stale heads so a policy that never
        // pops (IfFits) cannot grow the queue without bound.
        while let Some(&(hid, hepoch)) = q.front() {
            if self.live(hid, hepoch) {
                break;
            }
            q.pop_front();
        }
        q.push_back((id, epoch));
    }

    /// Unmarks `id` (evicted or moved away). The queue entry is left
    /// behind as stale — no scan. O(1).
    fn remove(&self, id: SampleId) {
        if let Some((_, size)) = self.members.remove(id) {
            self.bytes.fetch_sub(size, Ordering::Relaxed);
        }
    }

    fn live(&self, id: SampleId, epoch: u64) -> bool {
        self.members.with(id, |&(e, _)| e == epoch).unwrap_or(false)
    }

    /// Claims and returns the oldest live member (exact global FIFO:
    /// the minimum epoch across shard heads). `None` when no live
    /// member remains.
    fn pop_oldest(&self) -> Option<SampleId> {
        loop {
            // Pass 1: drop stale heads, note each shard's live head.
            let mut best: Option<(usize, SampleId, u64)> = None;
            for (qi, queue) in self.queues.iter().enumerate() {
                let mut q = queue.lock();
                while let Some(&(id, epoch)) = q.front() {
                    if self.live(id, epoch) {
                        if best.is_none_or(|(_, _, be)| epoch < be) {
                            best = Some((qi, id, epoch));
                        }
                        break;
                    }
                    q.pop_front();
                }
            }
            let (qi, id, epoch) = best?;
            // Pass 2: re-take the winning shard's lock; a racing pop may
            // have claimed the head in between, so verify before popping.
            {
                let mut q = self.queues[qi].lock();
                match q.front() {
                    Some(&(hid, hepoch)) if hid == id && hepoch == epoch => {
                        q.pop_front();
                    }
                    _ => continue,
                }
            }
            // Claim membership under the id's shard lock: only the
            // matching epoch counts (a concurrent remove or re-push
            // makes this pop stale, in which case rescan).
            let mut shard = self.members.shard(id).write();
            if let Some(&(e, size)) = shard.get(&id) {
                if e == epoch {
                    shard.remove(&id);
                    drop(shard);
                    self.bytes.fetch_sub(size, Ordering::Relaxed);
                    return Some(id);
                }
            }
        }
    }
}

struct TierSlot {
    source: Arc<dyn DataSource>,
    counters: Counters,
    /// Read-path promotions resident in this tier, promotion order —
    /// the only entries [`PromotePolicy::Evicting`] may remove.
    promoted: PromotedSet,
}

struct StackInner {
    tiers: Vec<TierSlot>,
    /// Catalog of which cache tier holds each sample (the origin is
    /// authoritative and not cataloged).
    catalog: MetadataStore,
    /// Sizes of cataloged samples, for eviction byte accounting.
    sizes: ShardedMap<u64>,
    promote: PromotePolicy,
}

/// An ordered storage hierarchy with one fetch entry point.
///
/// Tiers are fastest first; the **last** source is the *origin* — the
/// authoritative store (typically the PFS) expected to hold every
/// sample. Clone to share between threads; all clones see one set of
/// tiers, one catalog, and one statistics block.
#[derive(Clone)]
pub struct TierStack {
    inner: Arc<StackInner>,
}

impl TierStack {
    /// Builds a stack from `sources` (fastest first, origin last) with
    /// the given promotion policy.
    ///
    /// # Panics
    /// Panics on an empty source list or more than 254 cache tiers
    /// (the catalog stores tier indices as `u8`).
    pub fn new(sources: Vec<Arc<dyn DataSource>>, promote: PromotePolicy) -> Self {
        Self::new_in_registry(sources, promote, &Registry::new())
    }

    /// Like [`Self::new`], but the per-tier counters are registered in
    /// `registry` (with whatever scope labels it carries) instead of a
    /// fresh private one — the path by which a tenant's tier statistics
    /// surface in the cluster's live telemetry.
    ///
    /// # Panics
    /// Panics on an empty source list or more than 254 cache tiers
    /// (the catalog stores tier indices as `u8`).
    pub fn new_in_registry(
        sources: Vec<Arc<dyn DataSource>>,
        promote: PromotePolicy,
        registry: &Registry,
    ) -> Self {
        assert!(!sources.is_empty(), "a tier stack needs an origin");
        assert!(
            sources.len() - 1 < usize::from(u8::MAX),
            "too many cache tiers"
        );
        Self {
            inner: Arc::new(StackInner {
                tiers: sources
                    .into_iter()
                    .map(|source| {
                        let counters = Counters::new(registry, source.name());
                        TierSlot {
                            source,
                            counters,
                            promoted: PromotedSet::new(),
                        }
                    })
                    .collect(),
                catalog: MetadataStore::new(),
                sizes: ShardedMap::new(),
                promote,
            }),
        }
    }

    /// A degenerate stack with no cache tiers: every read goes straight
    /// to the origin (how flat, PFS-only loaders join the tiered API).
    pub fn origin_only(origin: Arc<dyn DataSource>) -> Self {
        Self::new(vec![origin], PromotePolicy::Never)
    }

    /// [`Self::origin_only`] with counters registered in `registry`.
    pub fn origin_only_in_registry(origin: Arc<dyn DataSource>, registry: &Registry) -> Self {
        Self::new_in_registry(vec![origin], PromotePolicy::Never, registry)
    }

    /// Number of tiers including the origin.
    pub fn num_tiers(&self) -> usize {
        self.inner.tiers.len()
    }

    /// Index of the origin (always the last tier).
    pub fn origin_index(&self) -> usize {
        self.inner.tiers.len() - 1
    }

    /// Number of cache tiers (everything above the origin).
    pub fn cache_tiers(&self) -> usize {
        self.origin_index()
    }

    /// The source behind tier `tier`.
    pub fn source(&self, tier: usize) -> &Arc<dyn DataSource> {
        &self.inner.tiers[tier].source
    }

    /// Name of tier `tier`.
    pub fn tier_name(&self, tier: usize) -> &str {
        self.inner.tiers[tier].source.name()
    }

    /// The cache tier currently holding `id`, if any.
    pub fn locate(&self, id: SampleId) -> Option<usize> {
        self.inner.catalog.lookup(id).map(usize::from)
    }

    /// Whether any tier (cache or origin) holds `id`.
    pub fn contains(&self, id: SampleId) -> bool {
        self.locate(id).is_some() || self.inner.tiers[self.origin_index()].source.contains(id)
    }

    /// Samples currently cataloged across the cache tiers.
    pub fn cached_count(&self) -> usize {
        self.inner.catalog.cached_count()
    }

    /// **The** fetch entry point: serves `id` from the fastest tier
    /// holding it, records per-tier hits/misses/bytes, and promotes on
    /// miss per the stack's [`PromotePolicy`].
    ///
    /// # Errors
    /// Whatever the origin read produced when no tier holds the sample
    /// ([`SourceError::NotFound`] for a missing object, `Io` for an
    /// injected or real fault).
    pub fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        // A stale catalog hit already counted its own miss in
        // `read_tier`; remember it so the origin path does not count
        // that tier twice.
        let mut stale: Option<usize> = None;
        if let Some(hit_tier) = self.locate(id) {
            match self.read_tier(hit_tier, id) {
                Ok(data) => {
                    self.count_misses_above(hit_tier);
                    if hit_tier > 0 {
                        self.promote(hit_tier, id, &data);
                    }
                    return Ok(data);
                }
                // Stale catalog entry (raced eviction): repair and fall
                // through to the origin.
                Err(SourceError::NotFound(_)) => {
                    self.uncatalog_from(id, hit_tier);
                    stale = Some(hit_tier);
                }
                Err(e) => return Err(e),
            }
        }
        let origin = self.origin_index();
        let data = self.read_tier(origin, id)?;
        for (j, slot) in self.inner.tiers[..origin].iter().enumerate() {
            if stale != Some(j) {
                slot.counters.misses.inc();
            }
        }
        self.promote(origin, id, &data);
        Ok(data)
    }

    /// Vectored fetch: serves each id from the fastest tier holding it,
    /// exactly like [`Self::read`], but groups the ids no cache tier
    /// holds into **one** batched origin read. The batch is sorted by
    /// id before it reaches [`DataSource::read_many`], so origins with
    /// per-request overhead (object stores) coalesce adjacent ranges
    /// into fewer requests; results come back one per input id, in
    /// input order.
    ///
    /// Statistics, promotion, and stale-catalog repair are per id,
    /// identical to `ids.iter().map(|&id| self.read(id))` — only the
    /// origin round-trips differ.
    pub fn read_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        let origin = self.origin_index();
        let mut out: Vec<Option<Result<Bytes, SourceError>>> = ids.iter().map(|_| None).collect();
        // Ids the cache tiers could not serve: (input position, id, the
        // tier whose stale catalog hit already counted its own miss).
        let mut to_origin: Vec<(usize, SampleId, Option<usize>)> = Vec::new();
        for (pos, &id) in ids.iter().enumerate() {
            let mut stale: Option<usize> = None;
            if let Some(hit_tier) = self.locate(id) {
                match self.read_tier(hit_tier, id) {
                    Ok(data) => {
                        self.count_misses_above(hit_tier);
                        if hit_tier > 0 {
                            self.promote(hit_tier, id, &data);
                        }
                        out[pos] = Some(Ok(data));
                        continue;
                    }
                    Err(SourceError::NotFound(_)) => {
                        self.uncatalog_from(id, hit_tier);
                        stale = Some(hit_tier);
                    }
                    Err(e) => {
                        out[pos] = Some(Err(e));
                        continue;
                    }
                }
            }
            to_origin.push((pos, id, stale));
        }
        if !to_origin.is_empty() {
            to_origin.sort_by_key(|&(_, id, _)| id);
            let batch: Vec<SampleId> = to_origin.iter().map(|&(_, id, _)| id).collect();
            let results = self.read_origin_many(&batch);
            for ((pos, id, stale), r) in to_origin.into_iter().zip(results) {
                if let Ok(data) = &r {
                    for (j, slot) in self.inner.tiers[..origin].iter().enumerate() {
                        if stale != Some(j) {
                            slot.counters.misses.inc();
                        }
                    }
                    self.promote(origin, id, data);
                }
                out[pos] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every id resolved"))
            .collect()
    }

    /// Reads `id` directly from tier `tier`, recording only that tier's
    /// hit or miss (no promotion, no fallback).
    ///
    /// # Errors
    /// [`SourceError::NotFound`] when the tier does not hold the sample.
    pub fn read_tier(&self, tier: usize, id: SampleId) -> Result<Bytes, SourceError> {
        let slot = &self.inner.tiers[tier];
        // Only pay for the clock when a histogram is listening.
        let t0 = slot.counters.read_latency.is_active().then(Instant::now);
        match slot.source.read(id) {
            Ok(data) => {
                if let Some(t0) = t0 {
                    slot.counters.read_latency.record_duration(t0.elapsed());
                }
                slot.counters.hits.inc();
                slot.counters.bytes_read.add(data.len() as u64);
                Ok(data)
            }
            Err(e) => {
                if matches!(e, SourceError::NotFound(_)) {
                    slot.counters.misses.inc();
                }
                Err(e)
            }
        }
    }

    /// Reads `id` from the origin tier (no cache probe, no promotion).
    ///
    /// # Errors
    /// Whatever the origin produced.
    pub fn read_origin(&self, id: SampleId) -> Result<Bytes, SourceError> {
        self.read_tier(self.origin_index(), id)
    }

    /// Batch-reads `ids` from the origin tier through
    /// [`DataSource::read_many`], so origins with per-request overhead
    /// (object stores) can coalesce adjacent ids. Per-id hit/miss/byte
    /// statistics are recorded as if each sample were read alone.
    pub fn read_origin_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        let slot = &self.inner.tiers[self.origin_index()];
        let results = slot.source.read_many(ids);
        for r in &results {
            match r {
                Ok(data) => {
                    slot.counters.hits.inc();
                    slot.counters.bytes_read.add(data.len() as u64);
                }
                Err(SourceError::NotFound(_)) => {
                    slot.counters.misses.inc();
                }
                Err(_) => {}
            }
        }
        results
    }

    /// Liveness of the origin source, as reported by its resilience
    /// layer (always [`SourceHealth::Healthy`] for unwrapped origins).
    pub fn origin_health(&self) -> SourceHealth {
        self.inner.tiers[self.origin_index()].source.health()
    }

    /// Resilience counters of the origin source, when wrapped.
    pub fn origin_resilience(&self) -> Option<crate::resilience::ResilienceStats> {
        self.inner.tiers[self.origin_index()].source.resilience()
    }

    /// Serves `id` from its cache tier if cataloged: the serving-loop
    /// lookup (`None` when uncached — callers do *not* fall through to
    /// the origin here).
    pub fn get_cached(&self, id: SampleId) -> Option<Bytes> {
        let tier = self.locate(id)?;
        match self.read_tier(tier, id) {
            Ok(data) => Some(data),
            Err(_) => {
                self.uncatalog_from(id, tier);
                None
            }
        }
    }

    /// A planned (pinned) fill: stores `id` into cache tier `tier` and
    /// catalogs it. Pinned fills are never displaced by read-path
    /// eviction — this is how clairvoyant placement claims capacity.
    ///
    /// # Errors
    /// [`SourceError::Full`] when the tier cannot take the sample.
    pub fn fill(&self, tier: usize, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        debug_assert!(tier < self.origin_index(), "fills target cache tiers");
        let size = data.len() as u64;
        let slot = &self.inner.tiers[tier];
        slot.source.write(id, data)?;
        slot.counters.fills.inc();
        slot.counters.bytes_filled.add(size);
        // A pinned fill always wins the catalog (the clairvoyant plan
        // overrides read-path placement); retire any copy a racing
        // promotion had cataloged elsewhere instead of orphaning it.
        let prev = self.inner.catalog.mark_cached(id, tier as u8);
        self.inner.sizes.insert(id, size);
        if let Some(p) = prev {
            if usize::from(p) != tier {
                self.drop_copy(usize::from(p), id);
            }
        }
        Ok(())
    }

    /// Evicts `id` from cache tier `tier`, updating catalog and
    /// statistics. Returns whether the sample was present.
    pub fn evict(&self, tier: usize, id: SampleId) -> bool {
        let slot = &self.inner.tiers[tier];
        let size = slot
            .source
            .size_of(id)
            .or_else(|| self.inner.sizes.get(id))
            .unwrap_or(0);
        if slot.source.evict(id) {
            slot.counters.evictions.inc();
            slot.counters.bytes_evicted.add(size);
            slot.promoted.remove(id);
            self.uncatalog_from(id, tier);
            true
        } else {
            false
        }
    }

    /// Statistics snapshot for tier `tier`.
    pub fn stats(&self, tier: usize) -> TierStats {
        let slot = &self.inner.tiers[tier];
        let [hits, misses, bytes_read, fills, bytes_filled, promotions, demotions, evictions, bytes_evicted] =
            slot.counters.since_build();
        TierStats {
            name: slot.source.name().to_string(),
            hits,
            misses,
            bytes_read,
            fills,
            bytes_filled,
            promotions,
            demotions,
            evictions,
            bytes_evicted,
            capacity: slot.source.capacity(),
            used: slot.source.used(),
        }
    }

    /// Statistics for every tier, fastest first (origin last).
    pub fn all_stats(&self) -> Vec<TierStats> {
        (0..self.num_tiers()).map(|j| self.stats(j)).collect()
    }

    /// Total capacity of the cache tiers (unbounded tiers excluded).
    pub fn total_cache_capacity(&self) -> u64 {
        self.inner.tiers[..self.origin_index()]
            .iter()
            .filter_map(|t| t.source.capacity())
            .sum()
    }

    fn count_misses_above(&self, tier: usize) {
        for slot in &self.inner.tiers[..tier] {
            slot.counters.misses.inc();
        }
    }

    /// Retires a superseded resident copy from a cache tier's backend,
    /// promoted set, and eviction counters — *not* the catalog, which
    /// already points at the surviving copy.
    fn drop_copy(&self, tier: usize, id: SampleId) {
        let slot = &self.inner.tiers[tier];
        let size = slot.source.size_of(id).unwrap_or(0);
        if slot.source.evict(id) {
            slot.counters.evictions.inc();
            slot.counters.bytes_evicted.add(size);
            slot.promoted.remove(id);
        }
    }

    /// Removes the catalog entry only if it still points at `tier` —
    /// a concurrent promotion may have re-cataloged the sample at a
    /// faster tier, and blindly removing would orphan that resident
    /// copy (capacity spent, never served).
    fn uncatalog_from(&self, id: SampleId, tier: usize) {
        if self.inner.catalog.remove_if(id, tier as u8) {
            self.inner.sizes.remove(id);
        }
    }

    /// Promotes `id` (just served from `from`) into the topmost cache
    /// tier the policy can place it in. A successful promotion out of a
    /// *cache* tier removes the lower copy (a move); promotion from the
    /// origin copies (the origin stays authoritative). The moved copy
    /// keeps its status: a pinned fill stays pinned in its new tier, a
    /// read-path resident stays evictable.
    fn promote(&self, from: usize, id: SampleId, data: &Bytes) {
        if matches!(self.inner.promote, PromotePolicy::Never) {
            return;
        }
        // Pinned fills never sit in a promoted queue; anything arriving
        // from the origin is by definition a read-path resident.
        let evictable = from == self.origin_index() || self.inner.tiers[from].promoted.contains(id);
        let size = data.len() as u64;
        for tier in 0..from.min(self.origin_index()) {
            let slot = &self.inner.tiers[tier];
            if matches!(self.inner.promote, PromotePolicy::Evicting) {
                self.make_room(tier, size);
            }
            if !fits(slot.source.as_ref(), size) {
                continue;
            }
            if slot.source.write(id, data.clone()).is_ok() {
                // The catalog is the placement arbiter: racing
                // promotions of the same sample may land copies in
                // different tiers, and only the claim winner keeps
                // its copy — the loser withdraws, so no resident
                // bytes ever outlive their catalog entry.
                match self.inner.catalog.claim_fastest(id, tier as u8) {
                    Ok(prev) => {
                        slot.counters.fills.inc();
                        slot.counters.bytes_filled.add(size);
                        slot.counters.promotions.inc();
                        if evictable {
                            slot.promoted.push(id, size);
                        }
                        self.inner.sizes.insert(id, size);
                        // Move semantics: drop the slower copy (the
                        // serving tier, or wherever a racing placement
                        // had cataloged it) so capacity is not spent
                        // twice.
                        if let Some(p) = prev {
                            if usize::from(p) != tier {
                                self.drop_copy(usize::from(p), id);
                            }
                        }
                    }
                    Err(_) => {
                        // A strictly faster copy won the race; our
                        // write never becomes visible — take it back.
                        slot.source.evict(id);
                    }
                }
                return;
            }
        }
    }

    /// Read-path eviction: frees space in `tier` by evicting its oldest
    /// read-path promotions (pinned fills stay) until `size` bytes fit
    /// or no evictable entry remains. Victims demote into the next tier
    /// down with free space instead of being dropped.
    fn make_room(&self, tier: usize, size: u64) {
        let slot = &self.inner.tiers[tier];
        let Some(cap) = slot.source.capacity() else {
            return;
        };
        if size > cap {
            return; // could never fit; evicting everything would not help
        }
        // If the pinned residents alone exceed the space the sample
        // needs, no amount of read-path eviction can make it fit —
        // bail out instead of flushing the tier's whole working set.
        // (`bytes()` is a running atomic, not an O(n) queue scan.)
        let evictable = slot.promoted.bytes();
        if slot.source.used().saturating_sub(evictable) + size > cap {
            return;
        }
        loop {
            if slot.source.used() + size <= cap {
                return;
            }
            let Some(victim) = slot.promoted.pop_oldest() else {
                return;
            };
            let vsize = slot.source.size_of(victim).unwrap_or(0);
            // Spill absorption: keep the victim's bytes for demotion
            // (the read pays the tier's modelled read rate, as a real
            // tier-manager's demotion traffic would).
            let vdata = slot.source.read(victim).ok();
            if slot.source.evict(victim) {
                slot.counters.evictions.inc();
                slot.counters.bytes_evicted.add(vsize);
                self.uncatalog_from(victim, tier);
                if let Some(data) = vdata {
                    self.demote(tier + 1, victim, data);
                }
            }
        }
    }

    /// Demotes an eviction victim into the first cache tier at or below
    /// `start` with free space (no cascading eviction — a full lower
    /// hierarchy drops the victim; the origin still holds it).
    fn demote(&self, start: usize, id: SampleId, data: Bytes) {
        let size = data.len() as u64;
        for tier in start..self.origin_index() {
            let slot = &self.inner.tiers[tier];
            if !fits(slot.source.as_ref(), size) {
                continue;
            }
            if slot.source.write(id, data.clone()).is_ok() {
                match self.inner.catalog.claim_fastest(id, tier as u8) {
                    Ok(prev) => {
                        slot.counters.fills.inc();
                        slot.counters.bytes_filled.add(size);
                        slot.counters.demotions.inc();
                        // Demoted entries stay evictable read-path
                        // residents.
                        slot.promoted.push(id, size);
                        self.inner.sizes.insert(id, size);
                        if let Some(p) = prev {
                            if usize::from(p) != tier {
                                self.drop_copy(usize::from(p), id);
                            }
                        }
                    }
                    Err(_) => {
                        // A racing read already re-promoted the victim
                        // somewhere faster; withdraw the demoted copy.
                        slot.source.evict(id);
                    }
                }
                return;
            }
        }
    }
}

fn fits(source: &dyn DataSource, size: u64) -> bool {
    match source.capacity() {
        None => true,
        Some(cap) => source.used().saturating_add(size) <= cap,
    }
}

/// Declarative description of one cache tier, for scenario configs:
/// name, byte capacity, and aggregate read/write rates (model bytes/s).
/// [`TierSpec::build`] realizes it as a rate-throttled memory store —
/// how the runtime models SSD/HDD tiers without the hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Tier name ("ram", "ssd", …).
    pub name: String,
    /// Capacity in bytes; `None` = unbounded.
    pub capacity: Option<u64>,
    /// Aggregate read throughput, model bytes/s.
    pub read_rate: f64,
    /// Aggregate write throughput, model bytes/s.
    pub write_rate: f64,
}

impl TierSpec {
    /// A bounded tier.
    pub fn new(name: impl Into<String>, capacity: u64, read_rate: f64, write_rate: f64) -> Self {
        Self {
            name: name.into(),
            capacity: Some(capacity),
            read_rate,
            write_rate,
        }
    }

    /// Realizes the spec as a throttled in-memory source under `scale`.
    pub fn build(&self, scale: TimeScale) -> Arc<dyn DataSource> {
        Arc::new(ThrottledBackend::new(
            MemoryBackend::new(self.name.clone(), self.capacity.unwrap_or(u64::MAX)),
            self.read_rate,
            self.write_rate,
            scale,
        ))
    }
}

/// Builds a [`TierStack`] from cache-tier specs (fastest first) over an
/// `origin` source.
pub fn build_stack(
    specs: &[TierSpec],
    scale: TimeScale,
    origin: Arc<dyn DataSource>,
    promote: PromotePolicy,
) -> TierStack {
    build_stack_in_registry(specs, scale, origin, promote, &Registry::new())
}

/// [`build_stack`] with the per-tier counters registered in `registry`.
pub fn build_stack_in_registry(
    specs: &[TierSpec],
    scale: TimeScale,
    origin: Arc<dyn DataSource>,
    promote: PromotePolicy,
    registry: &Registry,
) -> TierStack {
    let mut sources: Vec<Arc<dyn DataSource>> = specs.iter().map(|s| s.build(scale)).collect();
    sources.push(origin);
    TierStack::new_in_registry(sources, promote, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(name: &str, cap: u64) -> Arc<dyn DataSource> {
        Arc::new(MemoryBackend::new(name, cap))
    }

    /// An origin preloaded with `n` distinct samples of `size` bytes.
    fn origin_with(n: u64, size: usize) -> Arc<dyn DataSource> {
        let o = MemoryBackend::new("origin", u64::MAX);
        for id in 0..n {
            StorageBackend::insert(&o, id, Bytes::from(vec![(id % 251) as u8; size])).unwrap();
        }
        Arc::new(o)
    }

    #[test]
    fn read_falls_through_to_origin_and_promotes() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::IfFits,
        );
        let data = stack.read(2).unwrap();
        assert_eq!(data, Bytes::from(vec![2u8; 10]));
        // First read: ram missed, origin hit, sample promoted to ram.
        let ram = stack.stats(0);
        assert_eq!((ram.hits, ram.misses, ram.promotions), (0, 1, 1));
        assert_eq!(stack.locate(2), Some(0));
        // Second read: ram hit, origin untouched.
        stack.read(2).unwrap();
        let ram = stack.stats(0);
        let origin = stack.stats(1);
        assert_eq!((ram.hits, ram.misses), (1, 1));
        assert_eq!(origin.hits, 1);
        assert_eq!(origin.capacity, Some(u64::MAX));
    }

    #[test]
    fn middle_tier_hit_promotes_and_moves_upward() {
        let stack = TierStack::new(
            vec![mem("ram", 100), mem("ssd", 100), origin_with(4, 10)],
            PromotePolicy::IfFits,
        );
        stack.fill(1, 3, Bytes::from(vec![3u8; 10])).unwrap();
        assert_eq!(stack.locate(3), Some(1));
        let data = stack.read(3).unwrap();
        assert_eq!(data[0], 3);
        // Hit at ssd, then moved up into ram (ssd copy dropped).
        assert_eq!(stack.locate(3), Some(0));
        assert_eq!(stack.stats(1).evictions, 1);
        assert_eq!(stack.source(1).count(), 0);
        assert_eq!(stack.source(0).count(), 1);
        // Origin never consulted.
        assert_eq!(stack.stats(2).hits, 0);
    }

    #[test]
    fn full_tier_is_skipped_by_if_fits() {
        let stack = TierStack::new(
            vec![mem("ram", 15), mem("ssd", 100), origin_with(4, 10)],
            PromotePolicy::IfFits,
        );
        stack.read(0).unwrap(); // promoted into ram (10 of 15 used)
        stack.read(1).unwrap(); // ram full -> promoted into ssd
        assert_eq!(stack.locate(0), Some(0));
        assert_eq!(stack.locate(1), Some(1));
        assert_eq!(stack.stats(0).promotions, 1);
        assert_eq!(stack.stats(1).promotions, 1);
    }

    #[test]
    fn evicting_policy_displaces_oldest_promotion_only() {
        let stack = TierStack::new(
            vec![mem("ram", 25), origin_with(6, 10)],
            PromotePolicy::Evicting,
        );
        // A pinned fill takes 10 of the 25 bytes.
        stack.fill(0, 5, Bytes::from(vec![5u8; 10])).unwrap();
        stack.read(0).unwrap(); // promotes 0 (20/25 used)
        stack.read(1).unwrap(); // must evict 0 to fit 1
        assert_eq!(stack.locate(0), None, "oldest promotion evicted");
        assert_eq!(stack.locate(1), Some(0));
        assert_eq!(stack.locate(5), Some(0), "pinned fill survives");
        let ram = stack.stats(0);
        assert_eq!(ram.evictions, 1);
        assert_eq!(ram.bytes_evicted, 10);
        assert!(ram.used <= 25);
    }

    #[test]
    fn eviction_victims_demote_to_the_next_tier() {
        // RAM holds 2 samples, SSD holds 4: scanning 6 samples spills
        // RAM's victims into the SSD instead of dropping them.
        let stack = TierStack::new(
            vec![mem("ram", 20), mem("ssd", 40), origin_with(6, 10)],
            PromotePolicy::Evicting,
        );
        for id in 0..6 {
            stack.read(id).unwrap();
        }
        let ssd = stack.stats(1);
        assert!(ssd.demotions > 0, "no spill absorbed: {ssd:?}");
        assert_eq!(ssd.demotions, ssd.fills);
        // Every demoted sample is still cache-served (and cataloged).
        let cached = (0..6).filter(|&id| stack.locate(id).is_some()).count();
        assert_eq!(cached, 6, "RAM(2) + SSD(4) hold the whole scan");
        let origin_before = stack.stats(2).hits;
        for id in 0..6 {
            stack.read(id).unwrap();
        }
        // Promotion churn may drop an early victim while the SSD is
        // momentarily full, but the re-scan must be almost entirely
        // cache-served — without demotion every RAM spill would be
        // lost and the origin would see most of the scan again.
        assert!(
            stack.stats(2).hits - origin_before <= 2,
            "re-scan mostly cache-served: {} extra origin hits",
            stack.stats(2).hits - origin_before
        );
    }

    #[test]
    fn never_policy_leaves_tiers_untouched() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::Never,
        );
        stack.read(1).unwrap();
        stack.read(1).unwrap();
        assert_eq!(stack.stats(0).fills, 0);
        assert_eq!(stack.stats(1).hits, 2);
        assert_eq!(stack.locate(1), None);
    }

    #[test]
    fn origin_only_stack_serves_everything_from_origin() {
        let stack = TierStack::origin_only(origin_with(3, 8));
        assert_eq!(stack.num_tiers(), 1);
        assert_eq!(stack.cache_tiers(), 0);
        for id in 0..3 {
            assert_eq!(stack.read(id).unwrap().len(), 8);
        }
        assert_eq!(stack.stats(0).hits, 3);
    }

    #[test]
    fn missing_sample_is_not_found() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(2, 4)],
            PromotePolicy::IfFits,
        );
        assert_eq!(stack.read(99), Err(SourceError::NotFound(99)));
        assert!(!stack.contains(99));
        assert!(stack.contains(0));
    }

    #[test]
    fn get_cached_serves_only_cataloged_samples() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::Never,
        );
        assert!(stack.get_cached(1).is_none());
        stack.fill(0, 1, Bytes::from(vec![1u8; 10])).unwrap();
        assert_eq!(stack.get_cached(1).unwrap().len(), 10);
        // A raced eviction behind the stack's back repairs the catalog.
        assert!(stack.source(0).evict(1));
        assert!(stack.get_cached(1).is_none());
        assert_eq!(stack.locate(1), None);
    }

    #[test]
    fn explicit_evict_updates_catalog_and_stats() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::IfFits,
        );
        stack.read(2).unwrap();
        assert!(stack.evict(0, 2));
        assert!(!stack.evict(0, 2));
        let ram = stack.stats(0);
        assert_eq!(ram.evictions, 1);
        assert_eq!(ram.bytes_evicted, 10);
        assert_eq!(stack.cached_count(), 0);
        // The sample is still readable (origin authoritative).
        assert!(stack.read(2).is_ok());
    }

    #[test]
    fn pinned_fill_stays_pinned_across_promotion() {
        // A pinned ssd fill promoted into ram must NOT become a
        // read-path resident there: later capacity pressure may never
        // evict the clairvoyantly planned placement.
        let stack = TierStack::new(
            vec![mem("ram", 20), mem("ssd", 100), origin_with(6, 10)],
            PromotePolicy::Evicting,
        );
        stack.fill(1, 5, Bytes::from(vec![5u8; 10])).unwrap();
        stack.read(5).unwrap(); // moved ssd -> ram, still pinned
        assert_eq!(stack.locate(5), Some(0));
        // Scan everything else: ram is full (pin + one resident slot),
        // churning read-path promotions around the pin.
        for _ in 0..2 {
            for id in 0..5 {
                stack.read(id).unwrap();
            }
        }
        assert_eq!(
            stack.locate(5),
            Some(0),
            "promoted pinned fill was evicted by read-path pressure"
        );
    }

    #[test]
    fn stale_catalog_read_counts_one_miss_per_tier() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::Never,
        );
        stack.fill(0, 1, Bytes::from(vec![1u8; 10])).unwrap();
        // Evict behind the stack's back: the next read finds a stale
        // catalog entry, repairs it, and falls through to the origin —
        // recording exactly ONE miss for the stale tier.
        assert!(stack.source(0).evict(1));
        assert_eq!(stack.read(1).unwrap().len(), 10);
        let ram = stack.stats(0);
        assert_eq!((ram.hits, ram.misses), (0, 1));
        assert_eq!(stack.stats(1).hits, 1);
        assert_eq!(stack.locate(1), None, "stale entry repaired");
    }

    #[test]
    fn make_room_spares_working_set_when_pinned_fills_block_fit() {
        // Pinned fills hold 20 of 25 bytes; an 8-byte promotion can
        // never fit, so the resident 5-byte promotion must survive.
        let o = MemoryBackend::new("origin", u64::MAX);
        StorageBackend::insert(&o, 0, Bytes::from(vec![0u8; 5])).unwrap();
        StorageBackend::insert(&o, 1, Bytes::from(vec![1u8; 8])).unwrap();
        let stack = TierStack::new(vec![mem("ram", 25), Arc::new(o)], PromotePolicy::Evicting);
        stack.fill(0, 9, Bytes::from(vec![9u8; 20])).unwrap();
        stack.read(0).unwrap(); // 5-byte promotion fits (25/25 used)
        assert_eq!(stack.locate(0), Some(0));
        stack.read(1).unwrap(); // 8 bytes can never fit next to the pin
        assert_eq!(
            stack.locate(0),
            Some(0),
            "hopeless promotion must not flush the working set"
        );
        assert_eq!(stack.stats(0).evictions, 0);
    }

    #[test]
    fn zero_capacity_tier_degrades_to_flat() {
        let stack = TierStack::new(
            vec![mem("ram", 0), origin_with(4, 10)],
            PromotePolicy::Evicting,
        );
        for id in 0..4 {
            assert_eq!(stack.read(id).unwrap().len(), 10);
        }
        let ram = stack.stats(0);
        assert_eq!(ram.fills, 0);
        assert_eq!(ram.used, 0);
        assert_eq!(stack.stats(1).hits, 4);
    }

    #[test]
    fn tier_spec_builds_throttled_sources() {
        let spec = TierSpec::new("ssd", 1_000, 1e12, 1e12);
        let src = spec.build(TimeScale::realtime());
        assert_eq!(src.name(), "ssd");
        assert_eq!(src.capacity(), Some(1_000));
        let stack = build_stack(
            &[spec],
            TimeScale::realtime(),
            origin_with(2, 10),
            PromotePolicy::IfFits,
        );
        assert_eq!(stack.num_tiers(), 2);
        assert_eq!(stack.read(0).unwrap().len(), 10);
        assert_eq!(stack.locate(0), Some(0));
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(2, 10)],
            PromotePolicy::IfFits,
        );
        stack.read(0).unwrap(); // miss
        stack.read(0).unwrap(); // hit
        stack.read(0).unwrap(); // hit
        let s = stack.stats(0);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TierStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn promoted_set_is_exact_fifo_with_o1_removal() {
        let p = PromotedSet::new();
        for id in 0..8u64 {
            p.push(id, 10);
        }
        assert_eq!(p.bytes(), 80);
        assert!(p.contains(3));
        // O(1) removal leaves a stale queue entry behind…
        p.remove(0);
        p.remove(2);
        assert_eq!(p.bytes(), 60);
        assert!(!p.contains(0));
        // …which pop skips: global FIFO over the live members.
        assert_eq!(p.pop_oldest(), Some(1));
        // Re-pushing moves an id to the back of the FIFO.
        p.push(3, 10);
        assert_eq!(p.pop_oldest(), Some(4));
        assert_eq!(p.pop_oldest(), Some(5));
        assert_eq!(p.pop_oldest(), Some(6));
        assert_eq!(p.pop_oldest(), Some(7));
        assert_eq!(p.pop_oldest(), Some(3), "re-push lands last");
        assert_eq!(p.pop_oldest(), None);
        assert_eq!(p.bytes(), 0);
    }

    #[test]
    fn read_many_matches_sequential_reads() {
        // Two identical stacks; one read sample-by-sample, one vectored.
        // Bytes, catalog placement, and every per-tier counter agree.
        let build = || {
            let stack = TierStack::new(
                vec![mem("ram", 40), origin_with(8, 10)],
                PromotePolicy::Evicting,
            );
            stack.fill(0, 7, Bytes::from(vec![7u8; 10])).unwrap();
            stack
        };
        let seq = build();
        let vec_ = build();
        let ids = [7, 0, 1, 7, 5, 3];
        let a: Vec<_> = ids.iter().map(|&id| seq.read(id)).collect();
        let b = vec_.read_many(&ids);
        assert_eq!(a, b);
        assert_eq!(seq.all_stats(), vec_.all_stats());
        for id in 0..8 {
            assert_eq!(seq.locate(id), vec_.locate(id), "placement of {id}");
        }
    }

    #[test]
    fn read_many_reports_missing_ids_in_position() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::IfFits,
        );
        let res = stack.read_many(&[2, 99, 0]);
        assert_eq!(res[0].as_ref().unwrap()[0], 2);
        assert_eq!(res[1], Err(SourceError::NotFound(99)));
        assert_eq!(res[2].as_ref().unwrap().len(), 10);
        // Found ids were promoted; the missing one counted an origin miss.
        assert_eq!(stack.locate(2), Some(0));
        assert_eq!(stack.stats(1).misses, 1);
    }

    #[test]
    fn read_many_repairs_stale_entries_with_one_miss() {
        let stack = TierStack::new(
            vec![mem("ram", 100), origin_with(4, 10)],
            PromotePolicy::Never,
        );
        stack.fill(0, 1, Bytes::from(vec![1u8; 10])).unwrap();
        assert!(stack.source(0).evict(1));
        let res = stack.read_many(&[1, 2]);
        assert!(res.iter().all(|r| r.is_ok()));
        let ram = stack.stats(0);
        // id 1: one stale miss; id 2: one ordinary miss.
        assert_eq!((ram.hits, ram.misses), (0, 2));
        assert_eq!(stack.stats(1).hits, 2);
        assert_eq!(stack.locate(1), None, "stale entry repaired");
    }

    #[test]
    fn concurrent_reads_keep_capacity_consistent() {
        let stack = TierStack::new(
            vec![mem("ram", 55), origin_with(64, 10)],
            PromotePolicy::Evicting,
        );
        std::thread::scope(|s| {
            for t in 0..4 {
                let stack = stack.clone();
                s.spawn(move || {
                    for i in 0..64u64 {
                        stack.read((i + t * 16) % 64).unwrap();
                    }
                });
            }
        });
        let ram = stack.stats(0);
        assert!(ram.used <= 55, "capacity exceeded: {}", ram.used);
        assert_eq!(ram.used, stack.source(0).used());
    }
}
