//! The resilience layer: deadlines, hedged requests, and a circuit
//! breaker over any [`DataSource`].
//!
//! Object-store origins fail differently from a PFS: tail latency,
//! throttling, and brownouts dominate, and the cloud-storage
//! characterization literature (arxiv 2108.06322) shows naive loaders
//! degrade unboundedly under them. [`ResilientSource`] composes the
//! standard defenses into one wrapper that slots beneath a
//! [`crate::TierStack`] like every other [`DataSource`]:
//!
//! - **per-read deadlines** — an attempt that outlives its budget
//!   surfaces [`SourceError::DeadlineExceeded`] instead of stalling the
//!   step loop;
//! - **hedged requests** — when the primary read outlives a measured
//!   latency quantile, a duplicate is fired and the first answer wins
//!   (hedging changes *when* bytes arrive, never *which* bytes);
//! - **retry** — retryable failures are re-attempted under the caller's
//!   [`RetryPolicy`] (capped exponential backoff, full jitter);
//! - **circuit breaking** — consecutive failures open a [`CircuitBreaker`];
//!   while open, reads fail fast with [`SourceError::Unavailable`] so
//!   the fetch path can degrade gracefully to peers or lower tiers, and
//!   half-open probes re-close the breaker once the backend recovers.
//!
//! Everything observable is counted in [`ResilienceStats`], surfaced
//! through [`DataSource::resilience`] next to the per-tier
//! [`crate::TierStats`].

use crate::fault::RetryPolicy;
use crate::tier::{DataSource, SourceError, SourceHealth};
use crate::SampleId;
use bytes::Bytes;
use nopfs_obs::{names, Counter, Histogram, Registry, Tracer};
use nopfs_util::timing::TimeScale;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Model-seconds the breaker stays open before letting half-open
    /// probes through.
    pub cooldown: f64,
    /// Probes that must all succeed in half-open state to re-close
    /// (and the cap on concurrent half-open probes).
    pub half_open_probes: u32,
}

impl BreakerConfig {
    /// A new config.
    ///
    /// # Panics
    /// Panics on a zero threshold, zero probes, or negative cooldown.
    pub fn new(failure_threshold: u32, cooldown: f64, half_open_probes: u32) -> Self {
        assert!(failure_threshold >= 1, "threshold must be at least 1");
        assert!(half_open_probes >= 1, "at least one half-open probe");
        assert!(
            cooldown.is_finite() && cooldown >= 0.0,
            "cooldown must be non-negative"
        );
        Self {
            failure_threshold,
            cooldown,
            half_open_probes,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    #[default]
    Closed,
    /// Failing fast; no traffic reaches the backend until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: a bounded number of probes test the backend.
    HalfOpen,
}

#[derive(Debug, Default)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: f64,
    probes_inflight: u32,
    probe_successes: u32,
}

/// A per-backend circuit breaker (closed → open → half-open → closed)
/// driven by an explicit model-time clock: every transition is a pure
/// function of the call sequence and `now`, so state-machine behavior
/// is testable without wall clocks and reusable by the discrete-event
/// simulator.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
    to_open: Counter,
    to_half_open: Counter,
    to_closed: Counter,
    rejections: Counter,
    tracer: Tracer,
}

impl CircuitBreaker {
    /// A new breaker, initially closed, with private counters.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::new_in_registry(cfg, &Registry::new())
    }

    /// Like [`Self::new`], but transition counters register in
    /// `registry` as `breaker.*` metrics.
    pub fn new_in_registry(cfg: BreakerConfig, registry: &Registry) -> Self {
        Self {
            cfg,
            inner: Mutex::new(BreakerInner::default()),
            to_open: registry.counter(names::BREAKER_TO_OPEN),
            to_half_open: registry.counter(names::BREAKER_TO_HALF_OPEN),
            to_closed: registry.counter(names::BREAKER_TO_CLOSED),
            rejections: registry.counter(names::BREAKER_REJECTIONS),
            tracer: Tracer::noop(),
        }
    }

    /// Attaches a tracer: every state transition emits a model-clock
    /// instant (`breaker_open` / `breaker_half_open` / `breaker_closed`)
    /// stamped with the breaker's own `now`.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Current state (without advancing the open → half-open clock).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Whether a request may proceed at model time `now`. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the caller as a probe; half-open admits callers up to the
    /// probe cap. `false` means fail fast.
    pub fn allow(&self, now: f64) -> bool {
        let mut s = self.inner.lock();
        match s.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= s.opened_at + self.cfg.cooldown {
                    s.state = BreakerState::HalfOpen;
                    s.probes_inflight = 1;
                    s.probe_successes = 0;
                    self.to_half_open.inc();
                    self.tracer
                        .instant_at(names::EV_BREAKER_HALF_OPEN, "resilience", now, vec![]);
                    true
                } else {
                    self.rejections.inc();
                    false
                }
            }
            BreakerState::HalfOpen => {
                if s.probes_inflight < self.cfg.half_open_probes {
                    s.probes_inflight += 1;
                    true
                } else {
                    self.rejections.inc();
                    false
                }
            }
        }
    }

    /// Records a successful request admitted at or before `now`.
    pub fn on_success(&self, now: f64) {
        let mut s = self.inner.lock();
        match s.state {
            BreakerState::Closed => s.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                s.probes_inflight = s.probes_inflight.saturating_sub(1);
                s.probe_successes += 1;
                if s.probe_successes >= self.cfg.half_open_probes {
                    s.state = BreakerState::Closed;
                    s.consecutive_failures = 0;
                    self.to_closed.inc();
                    self.tracer
                        .instant_at(names::EV_BREAKER_CLOSED, "resilience", now, vec![]);
                }
            }
            // A straggling success from before the trip: no evidence
            // about the backend *now*.
            BreakerState::Open => {}
        }
    }

    /// Records a failed request at model time `now`.
    pub fn on_failure(&self, now: f64) {
        let mut s = self.inner.lock();
        match s.state {
            BreakerState::Closed => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.cfg.failure_threshold {
                    s.state = BreakerState::Open;
                    s.opened_at = now;
                    self.to_open.inc();
                    self.tracer
                        .instant_at(names::EV_BREAKER_OPEN, "resilience", now, vec![]);
                }
            }
            BreakerState::HalfOpen => {
                // A failed probe re-opens immediately.
                s.state = BreakerState::Open;
                s.opened_at = now;
                self.to_open.inc();
                self.tracer
                    .instant_at(names::EV_BREAKER_OPEN, "resilience", now, vec![]);
            }
            BreakerState::Open => {}
        }
    }

    /// Health at model time `now`: open-and-cooling is unavailable,
    /// open-but-probe-due and half-open are degraded (traffic *should*
    /// probe), closed is healthy.
    pub fn health(&self, now: f64) -> SourceHealth {
        let s = self.inner.lock();
        match s.state {
            BreakerState::Closed => SourceHealth::Healthy,
            BreakerState::HalfOpen => SourceHealth::Degraded,
            BreakerState::Open => {
                if now >= s.opened_at + self.cfg.cooldown {
                    SourceHealth::Degraded
                } else {
                    SourceHealth::Unavailable
                }
            }
        }
    }

    /// Model time at which an open breaker starts admitting half-open
    /// probes; `None` unless currently open. Lets sequential callers
    /// (the discrete-event simulator) jump the clock to the next probe
    /// instead of polling [`Self::allow`].
    pub fn reopen_at(&self) -> Option<f64> {
        let s = self.inner.lock();
        matches!(s.state, BreakerState::Open).then(|| s.opened_at + self.cfg.cooldown)
    }

    /// Lifetime transition counters:
    /// `(to_open, to_half_open, to_closed, rejections)`.
    pub fn transitions(&self) -> (u64, u64, u64, u64) {
        (
            self.to_open.get(),
            self.to_half_open.get(),
            self.to_closed.get(),
            self.rejections.get(),
        )
    }
}

/// Hedged-request tuning: fire a duplicate read once the primary has
/// outlived the tracked latency quantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Latency quantile (e.g. `0.95`) after which the hedge fires.
    pub quantile: f64,
    /// Hedge delay floor, and the delay used until enough latencies
    /// have been observed.
    pub min_delay: Duration,
    /// Completed reads tracked in the sliding latency window.
    pub window: usize,
}

impl HedgeConfig {
    /// A new config.
    ///
    /// # Panics
    /// Panics on a quantile outside `(0, 1)` or an empty window.
    pub fn new(quantile: f64, min_delay: Duration, window: usize) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1)"
        );
        assert!(window >= 1, "window must hold at least one sample");
        Self {
            quantile,
            min_delay,
            window,
        }
    }
}

/// Sliding window of completed-read latencies, for quantile-based hedge
/// delays ("The Tail at Scale": hedge after the 95th percentile, cap
/// the extra load at ~5%).
#[derive(Debug)]
struct LatencyTracker {
    window: Vec<Duration>,
    next: usize,
    filled: bool,
}

impl LatencyTracker {
    fn new(window: usize) -> Self {
        Self {
            window: Vec::with_capacity(window),
            next: 0,
            filled: false,
        }
    }

    fn record(&mut self, latency: Duration) {
        if self.window.len() < self.window.capacity() {
            self.window.push(latency);
        } else {
            self.window[self.next] = latency;
            self.next = (self.next + 1) % self.window.len();
            self.filled = true;
        }
    }

    /// The hedge delay: the configured quantile of the window once it
    /// has filled at least once, `min_delay` before that (no evidence,
    /// no aggression), floored at `min_delay` always.
    fn delay(&self, cfg: &HedgeConfig) -> Duration {
        if !self.filled && self.window.len() < self.window.capacity() {
            return cfg.min_delay;
        }
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * cfg.quantile).round() as usize;
        sorted[rank.min(sorted.len() - 1)].max(cfg.min_delay)
    }
}

/// Everything a [`ResilientSource`] layers over a backend.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retry schedule for retryable failures.
    pub retry: RetryPolicy,
    /// Wall-clock budget per attempt; `None` = wait forever.
    pub deadline: Option<Duration>,
    /// Hedged-request tuning; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Circuit-breaker tuning; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
}

impl ResilienceConfig {
    /// Retry-only resilience (no deadline, hedge, or breaker).
    pub fn retry_only(retry: RetryPolicy) -> Self {
        Self {
            retry,
            deadline: None,
            hedge: None,
            breaker: None,
        }
    }

    /// Adds a per-attempt deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds hedged requests.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Adds a circuit breaker.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }
}

/// Cumulative resilience counters, the per-backend health companion to
/// [`crate::TierStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Reads entering the resilience layer.
    pub reads: u64,
    /// Retries performed (attempts beyond each read's first).
    pub retries: u64,
    /// Reads whose whole retry budget was exhausted.
    pub exhausted: u64,
    /// Hedge requests fired.
    pub hedges_fired: u64,
    /// Hedged reads where the hedge answered first.
    pub hedges_won: u64,
    /// Attempts that missed their deadline.
    pub deadline_misses: u64,
    /// Attempts rejected by backend throttling.
    pub throttled: u64,
    /// Reads failed fast because the breaker was open.
    pub breaker_open_rejections: u64,
    /// Breaker transitions into the open state.
    pub breaker_to_open: u64,
    /// Breaker transitions into the half-open state.
    pub breaker_to_half_open: u64,
    /// Breaker transitions back to closed.
    pub breaker_to_closed: u64,
}

impl ResilienceStats {
    /// Accumulates `other` into `self` (for aggregating ranks/tenants).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.reads += other.reads;
        self.retries += other.retries;
        self.exhausted += other.exhausted;
        self.hedges_fired += other.hedges_fired;
        self.hedges_won += other.hedges_won;
        self.deadline_misses += other.deadline_misses;
        self.throttled += other.throttled;
        self.breaker_open_rejections += other.breaker_open_rejections;
        self.breaker_to_open += other.breaker_to_open;
        self.breaker_to_half_open += other.breaker_to_half_open;
        self.breaker_to_closed += other.breaker_to_closed;
    }
}

/// The resilience layer's registry handles (`resilience.*` metrics);
/// [`ResilienceStats`] is the typed view over them.
#[derive(Debug)]
struct Counters {
    reads: Counter,
    retries: Counter,
    exhausted: Counter,
    hedges_fired: Counter,
    hedges_won: Counter,
    deadline_misses: Counter,
    throttled: Counter,
    /// End-to-end read latency (ns), breaker rejections included.
    read_latency: Histogram,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Self {
            reads: registry.counter(names::RES_READS),
            retries: registry.counter(names::RES_RETRIES),
            exhausted: registry.counter(names::RES_EXHAUSTED),
            hedges_fired: registry.counter(names::RES_HEDGES_FIRED),
            hedges_won: registry.counter(names::RES_HEDGES_WON),
            deadline_misses: registry.counter(names::RES_DEADLINE_MISSES),
            throttled: registry.counter(names::RES_THROTTLED),
            read_latency: registry.histogram(names::RES_READ_LATENCY),
        }
    }
}

/// The outcome of one attempt: who answered, with what, after how long.
enum AttemptOutcome {
    Done(Result<Bytes, SourceError>, Duration, bool),
    TimedOut,
}

/// A [`DataSource`] wrapper combining deadlines, hedging, retry, and
/// circuit breaking — the full failure domain for an object-store (or
/// any flaky) origin. Layering, outermost first: breaker (fail fast
/// while open) → retry loop → per-attempt deadline + hedge.
pub struct ResilientSource {
    inner: Arc<dyn DataSource>,
    cfg: ResilienceConfig,
    breaker: Option<CircuitBreaker>,
    tracker: Mutex<LatencyTracker>,
    counters: Counters,
    tracer: Tracer,
    scale: TimeScale,
    start: Instant,
    draws: AtomicU64,
}

impl std::fmt::Debug for ResilientSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientSource")
            .field("inner", &self.inner.name())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl ResilientSource {
    /// Wraps `inner` under `cfg`; `scale` maps the breaker's
    /// model-second cooldowns onto the wall clock.
    pub fn new(inner: Arc<dyn DataSource>, cfg: ResilienceConfig, scale: TimeScale) -> Self {
        Self::new_in_registry(inner, cfg, scale, &Registry::new())
    }

    /// Like [`Self::new`], but the `resilience.*` / `breaker.*` metrics
    /// register in `registry` (with its scope labels).
    pub fn new_in_registry(
        inner: Arc<dyn DataSource>,
        cfg: ResilienceConfig,
        scale: TimeScale,
        registry: &Registry,
    ) -> Self {
        let window = cfg.hedge.map_or(1, |h| h.window);
        Self {
            breaker: cfg
                .breaker
                .map(|b| CircuitBreaker::new_in_registry(b, registry)),
            tracker: Mutex::new(LatencyTracker::new(window)),
            inner,
            cfg,
            counters: Counters::new(registry),
            tracer: Tracer::noop(),
            scale,
            start: Instant::now(),
            draws: AtomicU64::new(0),
        }
    }

    /// Attaches a tracer: hedge firings and breaker state changes emit
    /// model-clock instants into it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.breaker = self.breaker.map(|b| b.with_tracer(tracer.clone()));
        self.tracer = tracer;
        self
    }

    /// Model time since construction, the breaker's clock.
    fn now(&self) -> f64 {
        self.scale.to_model(self.start.elapsed())
    }

    /// The wrapped source.
    pub fn inner(&self) -> &Arc<dyn DataSource> {
        &self.inner
    }

    /// The breaker, when configured (for tests and telemetry).
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// One attempt: primary read, hedge after the quantile delay, both
    /// racing the per-attempt deadline. Returns the first completion.
    fn attempt(&self, id: SampleId) -> AttemptOutcome {
        // Fast path: nothing to race, read inline (no thread spawn).
        if self.cfg.deadline.is_none() && self.cfg.hedge.is_none() {
            let t0 = Instant::now();
            let r = self.inner.read(id);
            return AttemptOutcome::Done(r, t0.elapsed(), false);
        }

        let (tx, rx) = mpsc::channel::<(bool, Result<Bytes, SourceError>, Duration)>();
        let spawn = |hedge: bool| {
            let inner = Arc::clone(&self.inner);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let r = inner.read(id);
                // The loser's result is dropped with the receiver.
                let _ = tx.send((hedge, r, t0.elapsed()));
            });
        };
        let started = Instant::now();
        let deadline = self.cfg.deadline;
        let remaining = |started: Instant| deadline.map(|d| d.saturating_sub(started.elapsed()));
        spawn(false);
        let mut outstanding = 1u32;

        // Phase 1: wait up to the hedge delay (clipped by the deadline).
        if let Some(h) = &self.cfg.hedge {
            let hedge_delay = self.tracker.lock().delay(h);
            let wait = remaining(started).map_or(hedge_delay, |r| hedge_delay.min(r));
            match rx.recv_timeout(wait) {
                Ok((hedge, r, lat)) => return AttemptOutcome::Done(r, lat, hedge),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if remaining(started).is_none_or(|r| r > Duration::ZERO) {
                        self.counters.hedges_fired.inc();
                        self.tracer.instant_at(
                            names::EV_HEDGE_FIRED,
                            "resilience",
                            self.now(),
                            vec![("sample", id.into())],
                        );
                        spawn(true);
                        outstanding += 1;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("senders outlive us"),
            }
        }

        // Phase 2: first success (or last failure) wins, racing the
        // remaining deadline.
        let mut last: Option<AttemptOutcome> = None;
        while outstanding > 0 {
            let got = match remaining(started) {
                None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
                Some(r) if r > Duration::ZERO => rx.recv_timeout(r),
                Some(_) => return AttemptOutcome::TimedOut,
            };
            match got {
                Ok((hedge, r, lat)) => {
                    outstanding -= 1;
                    let done = AttemptOutcome::Done(r, lat, hedge);
                    if matches!(done, AttemptOutcome::Done(Ok(_), ..)) || outstanding == 0 {
                        return done;
                    }
                    last = Some(done);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => return AttemptOutcome::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        last.unwrap_or(AttemptOutcome::TimedOut)
    }

    /// The breaker → retry → deadline/hedge pipeline behind
    /// [`DataSource::read`].
    fn read_impl(&self, id: SampleId) -> Result<Bytes, SourceError> {
        self.counters.reads.inc();
        let mut last = None;
        for attempt in 0..self.cfg.retry.attempts {
            if let Some(b) = &self.breaker {
                if !b.allow(self.now()) {
                    return Err(SourceError::Unavailable(format!(
                        "{}: circuit open",
                        self.inner.name()
                    )));
                }
            }
            let outcome = self.attempt(id);
            let err = match outcome {
                AttemptOutcome::Done(Ok(data), latency, hedge_won) => {
                    if let Some(b) = &self.breaker {
                        b.on_success(self.now());
                    }
                    if hedge_won {
                        self.counters.hedges_won.inc();
                    }
                    self.tracker.lock().record(latency);
                    return Ok(data);
                }
                AttemptOutcome::Done(Err(e), ..) => {
                    if !e.is_retryable() {
                        // NotFound/Full say nothing about backend
                        // health: pass through without tripping.
                        return Err(e);
                    }
                    if matches!(e, SourceError::Throttled { .. }) {
                        self.counters.throttled.inc();
                    }
                    e
                }
                AttemptOutcome::TimedOut => {
                    self.counters.deadline_misses.inc();
                    SourceError::DeadlineExceeded {
                        deadline: self.cfg.deadline.unwrap_or_default(),
                    }
                }
            };
            if let Some(b) = &self.breaker {
                b.on_failure(self.now());
            }
            if attempt + 1 < self.cfg.retry.attempts {
                let draw = self.draws.fetch_add(1, Ordering::Relaxed);
                self.counters.retries.inc();
                let backoff = self.cfg.retry.backoff(attempt, draw);
                let wait = match &err {
                    SourceError::Throttled { retry_after } => backoff.max(*retry_after),
                    _ => backoff,
                };
                std::thread::sleep(wait);
            }
            last = Some(err);
        }
        self.counters.exhausted.inc();
        Err(last.expect("loop ran at least once"))
    }
}

impl DataSource for ResilientSource {
    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        // Only pay for the clock when a histogram is listening.
        let t0 = self.counters.read_latency.is_active().then(Instant::now);
        let result = self.read_impl(id);
        if let Some(t0) = t0 {
            self.counters.read_latency.record_duration(t0.elapsed());
        }
        result
    }

    fn read_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        // First pass through the backend's own coalescing; any
        // retryable stragglers go back through the full read path.
        self.inner
            .read_many(ids)
            .into_iter()
            .zip(ids)
            .map(|(r, &id)| match r {
                Err(e) if e.is_retryable() => self.read(id),
                other => other,
            })
            .collect()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }

    fn health(&self) -> SourceHealth {
        match &self.breaker {
            Some(b) => b.health(self.now()),
            None => self.inner.health(),
        }
    }

    fn resilience(&self) -> Option<ResilienceStats> {
        let (to_open, to_half_open, to_closed, rejections) = self
            .breaker
            .as_ref()
            .map_or((0, 0, 0, 0), |b| b.transitions());
        let c = &self.counters;
        let mut stats = ResilienceStats {
            reads: c.reads.get(),
            retries: c.retries.get(),
            exhausted: c.exhausted.get(),
            hedges_fired: c.hedges_fired.get(),
            hedges_won: c.hedges_won.get(),
            deadline_misses: c.deadline_misses.get(),
            throttled: c.throttled.get(),
            breaker_open_rejections: rejections,
            breaker_to_open: to_open,
            breaker_to_half_open: to_half_open,
            breaker_to_closed: to_closed,
        };
        // Nested resilience layers (rare, but legal) aggregate.
        if let Some(inner) = self.inner.resilience() {
            stats.merge(&inner);
        }
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, StorageBackend};

    fn mem_with(ids: &[SampleId]) -> Arc<dyn DataSource> {
        let m = MemoryBackend::new("mem", 1_000_000);
        for &id in ids {
            m.insert(id, Bytes::from(vec![id as u8; 8])).unwrap();
        }
        Arc::new(m)
    }

    fn fast_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts, Duration::from_micros(10), 0.5, 7)
    }

    /// A source that sleeps a scheduled duration per read, in call
    /// order, then serves from memory.
    struct SlowSource {
        inner: Arc<dyn DataSource>,
        delays: Mutex<std::collections::VecDeque<Duration>>,
    }

    impl SlowSource {
        fn new(inner: Arc<dyn DataSource>, delays: &[Duration]) -> Self {
            Self {
                inner,
                delays: Mutex::new(delays.iter().copied().collect()),
            }
        }
    }

    impl DataSource for SlowSource {
        fn name(&self) -> &str {
            "slow"
        }
        fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
            let d = self.delays.lock().pop_front().unwrap_or(Duration::ZERO);
            std::thread::sleep(d);
            self.inner.read(id)
        }
        fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
            self.inner.write(id, data)
        }
        fn contains(&self, id: SampleId) -> bool {
            self.inner.contains(id)
        }
        fn capacity(&self) -> Option<u64> {
            self.inner.capacity()
        }
        fn used(&self) -> u64 {
            self.inner.used()
        }
        fn evict(&self, id: SampleId) -> bool {
            self.inner.evict(id)
        }
        fn count(&self) -> usize {
            self.inner.count()
        }
        fn size_of(&self, id: SampleId) -> Option<u64> {
            self.inner.size_of(id)
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let b = CircuitBreaker::new(BreakerConfig::new(3, 10.0, 2));
        assert_eq!(b.state(), BreakerState::Closed);
        // Two failures: still closed (threshold 3).
        b.on_failure(1.0);
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(2.5));
        // Third trips it open.
        b.on_failure(3.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.health(5.0), SourceHealth::Unavailable);
        // While cooling: fail fast.
        assert!(!b.allow(5.0));
        assert!(!b.allow(12.9));
        // Cooldown elapsed: probe due.
        assert_eq!(b.health(13.0), SourceHealth::Degraded);
        assert!(b.allow(13.0), "first probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(13.1), "second probe admitted (cap 2)");
        assert!(!b.allow(13.2), "probe cap enforced");
        // Both probes succeed: closed again.
        b.on_success(13.3);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success(13.4);
        assert_eq!(b.state(), BreakerState::Closed);
        let (to_open, to_half_open, to_closed, rejections) = b.transitions();
        assert_eq!((to_open, to_half_open, to_closed), (1, 1, 1));
        assert_eq!(rejections, 3);
    }

    #[test]
    fn failed_half_open_probe_reopens_and_success_resets_the_streak() {
        let b = CircuitBreaker::new(BreakerConfig::new(2, 5.0, 1));
        b.on_failure(0.0);
        b.on_success(0.5); // streak broken
        b.on_failure(1.0);
        assert_eq!(b.state(), BreakerState::Closed, "success reset the count");
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(7.1), "cooldown over, probe admitted");
        b.on_failure(7.2);
        assert_eq!(b.state(), BreakerState::Open, "failed probe re-opens");
        // The re-open restarts the cooldown from the probe failure.
        assert!(!b.allow(11.0));
        assert!(b.allow(12.3));
        b.on_success(12.4);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions().0, 2, "two trips recorded");
    }

    #[test]
    fn open_breaker_fails_fast_with_unavailable() {
        let always_down = Arc::new(crate::fault::FaultySource::new(
            mem_with(&[]),
            crate::fault::ErrorInjection::new(0.0, 1, 0),
        ));
        // Synthetic: trip the breaker directly, then read.
        let src = ResilientSource::new(
            always_down,
            ResilienceConfig::retry_only(fast_retry(2)).with_breaker(BreakerConfig::new(1, 1e9, 1)),
            TimeScale::realtime(),
        );
        src.breaker().unwrap().on_failure(0.0);
        assert_eq!(src.health(), SourceHealth::Unavailable);
        match src.read(5) {
            Err(SourceError::Unavailable(msg)) => assert!(msg.contains("circuit open")),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        let stats = src.resilience().unwrap();
        assert_eq!(stats.breaker_to_open, 1);
        assert!(stats.breaker_open_rejections >= 1);
    }

    #[test]
    fn hedged_reads_return_identical_bytes_and_win_when_primary_stalls() {
        // First read of each sample stalls 50 ms; the hedge (delay
        // floor 1 ms) answers immediately from memory.
        let slow = Arc::new(SlowSource::new(
            mem_with(&[0, 1, 2]),
            &[Duration::from_millis(50), Duration::ZERO],
        ));
        let direct = mem_with(&[0, 1, 2]);
        let src = ResilientSource::new(
            slow,
            ResilienceConfig::retry_only(fast_retry(2)).with_hedge(HedgeConfig::new(
                0.5,
                Duration::from_millis(1),
                4,
            )),
            TimeScale::realtime(),
        );
        let hedged = src.read(1).unwrap();
        assert_eq!(hedged, direct.read(1).unwrap(), "hedge changed bytes");
        let stats = src.resilience().unwrap();
        assert_eq!(stats.hedges_fired, 1);
        assert_eq!(stats.hedges_won, 1);
        // Fast reads do not hedge.
        assert_eq!(src.read(2).unwrap(), direct.read(2).unwrap());
        assert_eq!(src.resilience().unwrap().hedges_fired, 1);
    }

    #[test]
    fn deadline_expiry_surfaces_and_is_retried_to_success() {
        // Attempt 1 outlives the 5 ms deadline; attempt 2 is instant.
        let slow = Arc::new(SlowSource::new(
            mem_with(&[3]),
            &[Duration::from_millis(80), Duration::ZERO],
        ));
        let src = ResilientSource::new(
            slow,
            ResilienceConfig::retry_only(fast_retry(3)).with_deadline(Duration::from_millis(5)),
            TimeScale::realtime(),
        );
        assert_eq!(src.read(3).unwrap()[0], 3);
        let stats = src.resilience().unwrap();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn deadline_exhaustion_reports_deadline_exceeded() {
        let slow = Arc::new(SlowSource::new(
            mem_with(&[0]),
            &[Duration::from_millis(80); 8],
        ));
        let src = ResilientSource::new(
            slow,
            ResilienceConfig::retry_only(fast_retry(2)).with_deadline(Duration::from_millis(2)),
            TimeScale::realtime(),
        );
        match src.read(0) {
            Err(SourceError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::from_millis(2));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = src.resilience().unwrap();
        assert_eq!(stats.deadline_misses, 2);
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn permanent_errors_pass_through_without_tripping_the_breaker() {
        let src = ResilientSource::new(
            mem_with(&[]),
            ResilienceConfig::retry_only(fast_retry(4)).with_breaker(BreakerConfig::new(1, 1e9, 1)),
            TimeScale::realtime(),
        );
        assert_eq!(src.read(9), Err(SourceError::NotFound(9)));
        assert_eq!(src.health(), SourceHealth::Healthy);
        let stats = src.resilience().unwrap();
        assert_eq!(stats.breaker_to_open, 0);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn transient_bursts_recover_through_retry_and_breaker_stays_closed() {
        // Bounded bursts (max 2) under a 4-attempt budget with a
        // breaker threshold above the burst bound: every read succeeds
        // and the breaker never opens.
        let faulty = Arc::new(crate::fault::FaultySource::new(
            mem_with(&[0, 1, 2, 3]),
            crate::fault::ErrorInjection::new(0.4, 2, 0xC10D),
        ));
        let src = ResilientSource::new(
            faulty,
            ResilienceConfig::retry_only(fast_retry(4))
                .with_breaker(BreakerConfig::new(8, 0.001, 1)),
            TimeScale::realtime(),
        );
        for round in 0..50 {
            for id in 0..4u64 {
                let data = src
                    .read(id)
                    .unwrap_or_else(|e| panic!("round {round} id {id}: {e}"));
                assert_eq!(data[0], id as u8);
            }
        }
        let stats = src.resilience().unwrap();
        assert_eq!(stats.exhausted, 0);
        assert!(stats.retries > 0, "injection never fired");
        assert_eq!(stats.breaker_to_open, 0, "threshold 8 > burst bound 2");
    }

    #[test]
    fn latency_tracker_reports_the_quantile_with_a_floor() {
        let cfg = HedgeConfig::new(0.95, Duration::from_millis(2), 10);
        let mut t = LatencyTracker::new(cfg.window);
        // Unfilled window: the floor.
        t.record(Duration::from_millis(100));
        assert_eq!(t.delay(&cfg), Duration::from_millis(2));
        for ms in 1..=10u64 {
            t.record(Duration::from_millis(ms));
        }
        // p95 of ~1..=10 ms rounds to the top observations.
        let d = t.delay(&cfg);
        assert!(d >= Duration::from_millis(8), "p95 too low: {d:?}");
        // The floor still applies when observations are tiny.
        for _ in 0..10 {
            t.record(Duration::from_micros(1));
        }
        assert_eq!(t.delay(&cfg), Duration::from_millis(2));
    }
}
