//! N-way sharded concurrent maps for the fetch hot path.
//!
//! The paper's premise is that I/O, not compute, bounds training — yet
//! a fetch path that funnels every sample through one global lock
//! serializes readers on exactly the path NoPFS optimizes. At
//! production worker counts the binding constraint is per-core read
//! throughput (arxiv 2108.06322), so every map a read touches — the
//! backend's id→bytes store, the catalog, the size table — is sharded
//! here: sample ids hash onto `N` independent `RwLock<HashMap>` shards,
//! concurrent readers of different samples take different locks, and
//! the shared cache line a single lock word would bounce between cores
//! disappears. Capacity accounting moves to relaxed atomics with a CAS
//! reservation loop run while holding only the entry's shard lock, so
//! not even the byte budget is a global section.
//!
//! Shard count defaults to [`DEFAULT_SHARDS`] (a power of two so the
//! id→shard map is a multiply-and-mask, not a division). Dense sample
//! ids are bit-mixed before masking so striding access patterns spread
//! across shards instead of resonating with one.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Default shard count. 16 shards keep worst-case lock convoys to
/// 1/16th of a global lock at negligible memory cost; the count is a
/// constructor parameter for callers that know their concurrency.
pub const DEFAULT_SHARDS: usize = 16;

/// Mixes a sample id into a shard index in `0..shards` (`shards` must
/// be a power of two). Fibonacci multiplicative hashing: one multiply,
/// one shift — cheap enough for a path that runs on every read.
#[inline]
fn shard_of(id: u64, mask: usize) -> usize {
    // High bits of the golden-ratio product are well mixed even for
    // dense/strided ids.
    ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize) & mask
}

/// An N-way sharded `HashMap<u64, V>`: the concurrent map behind every
/// structure on the fetch hot path (backend stores, the cache catalog,
/// size tables, promotion membership).
///
/// Reads and writes of different shards never contend; reads of the
/// same shard share a `RwLock` read guard. All methods take `&self`.
#[derive(Debug)]
pub struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<u64, V>>>,
    mask: usize,
}

impl<V> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedMap<V> {
    /// A map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A map with `shards` shards (rounded up to a power of two, min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard lock holding `id`, for compound operations that must
    /// hold the entry's lock across a check-then-act sequence (e.g.
    /// capacity reservation: lock the shard, read the displaced entry's
    /// size, CAS the byte budget, then insert).
    #[inline]
    pub fn shard(&self, id: u64) -> &RwLock<HashMap<u64, V>> {
        &self.shards[shard_of(id, self.mask)]
    }

    /// Index of the shard holding `id` (in `0..shard_count()`), for
    /// callers maintaining parallel per-shard structures (e.g. the
    /// per-shard FIFO promotion queues beside a membership map).
    #[inline]
    pub fn index_of(&self, id: u64) -> usize {
        shard_of(id, self.mask)
    }

    /// Inserts, returning the displaced value.
    pub fn insert(&self, id: u64, value: V) -> Option<V> {
        self.shard(id).write().insert(id, value)
    }

    /// Removes, returning the value if present.
    pub fn remove(&self, id: u64) -> Option<V> {
        self.shard(id).write().remove(&id)
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: u64) -> bool {
        self.shard(id).read().contains_key(&id)
    }

    /// Total entries across all shards (takes each shard's read lock in
    /// turn — a consistent-enough count for statistics, not a snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Applies `f` to the value under the entry's shard read lock.
    pub fn with<R>(&self, id: u64, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.shard(id).read().get(&id).map(f)
    }

    /// Folds `f` over every entry, shard by shard (each shard's read
    /// lock is held only for its own pass).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, u64, &V) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                acc = f(acc, *k, v);
            }
        }
        acc
    }
}

impl<V: Clone> ShardedMap<V> {
    /// Clones the value for `id` out of its shard.
    pub fn get(&self, id: u64) -> Option<V> {
        self.shard(id).read().get(&id).cloned()
    }
}

impl<V: PartialEq> ShardedMap<V> {
    /// Removes `id` only if its value equals `expected` (atomic
    /// compare-and-remove under the shard lock). Returns whether the
    /// entry was removed.
    pub fn remove_if(&self, id: u64, expected: &V) -> bool {
        let mut shard = self.shard(id).write();
        if shard.get(&id) == Some(expected) {
            shard.remove(&id);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedMap::<u8>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedMap::<u8>::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedMap::<u8>::with_shards(5).shard_count(), 8);
        assert_eq!(ShardedMap::<u8>::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn basic_map_operations() {
        let m = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(1, "b"), Some("a"));
        m.insert(1_000_000, "far");
        assert_eq!(m.get(1), Some("b"));
        assert!(m.contains(1_000_000));
        assert_eq!(m.len(), 2);
        assert_eq!(m.with(1, |v| v.len()), Some(1));
        assert_eq!(m.remove(1), Some("b"));
        assert_eq!(m.remove(1), None);
        assert!(!m.contains(1));
    }

    #[test]
    fn remove_if_requires_matching_value() {
        let m = ShardedMap::new();
        m.insert(7, 3u8);
        assert!(!m.remove_if(7, &4));
        assert!(m.contains(7));
        assert!(m.remove_if(7, &3));
        assert!(!m.remove_if(7, &3));
    }

    #[test]
    fn dense_ids_spread_across_shards() {
        let m = ShardedMap::<u8>::with_shards(16);
        let mut hit = vec![false; m.shard_count()];
        for id in 0..64u64 {
            hit[shard_of(id, m.mask)] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(used >= 8, "dense ids clumped into {used} of 16 shards");
    }

    #[test]
    fn fold_visits_every_entry() {
        let m = ShardedMap::new();
        for id in 0..100u64 {
            m.insert(id, id * 2);
        }
        let sum = m.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(sum, (0..100u64).map(|i| i * 2).sum());
        assert_eq!(m.fold(0usize, |acc, _, _| acc + 1), 100);
    }

    #[test]
    fn concurrent_writers_land_all_entries() {
        let m = Arc::new(ShardedMap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500u64 {
                        m.insert(t * 500 + i, t);
                    }
                });
            }
        });
        assert_eq!(m.len(), 4_000);
        for t in 0..8u64 {
            assert_eq!(m.get(t * 500), Some(t));
        }
    }
}
