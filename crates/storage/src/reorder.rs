//! Position-ordered staging: out-of-order fills, in-order consumption.
//!
//! NoPFS runs `p_0` staging prefetch threads in parallel; their fetches
//! complete out of order, but the trainer must consume samples in exact
//! access-stream order (Rule 1 requires the *buffer* to be filled in
//! `R` order, and SGD consumes it sequentially). The paper's circular
//! staging buffer assigns each sample a slot by stream position; this
//! type reproduces that: producers insert `(position, sample)` in any
//! order, the consumer pops positions `0, 1, 2, …` strictly.
//!
//! Capacity is bounded in bytes with one escape hatch: the sample the
//! consumer is waiting for (`position == next`) is always admitted, so
//! a burst of out-of-order completions can never deadlock the pipeline.

use crate::SampleId;
use bytes::Bytes;
use nopfs_obs::{names, Counter, Gauge, Registry};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    next: u64,
    pending: BTreeMap<u64, (SampleId, Bytes)>,
    used: u64,
    closed: bool,
    max_used: u64,
}

/// Registry handles (`staging.*` metrics): cumulative push/pop
/// counters and a live occupancy gauge, updated inside the state lock.
#[derive(Debug)]
struct Metrics {
    pushed: Counter,
    popped: Counter,
    used_bytes: Gauge,
}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    state: Mutex<State>,
    metrics: Metrics,
    space: Condvar,
    data: Condvar,
}

/// A byte-bounded reorder buffer keyed by stream position. Clone to
/// share between prefetcher threads and the consumer.
#[derive(Debug, Clone)]
pub struct ReorderStage {
    inner: Arc<Inner>,
}

impl ReorderStage {
    /// Creates a stage with the given byte capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        Self::new_in_registry(capacity, &Registry::noop())
    }

    /// Like [`Self::new`], but the stage's `staging.*` metrics register
    /// in `registry` (with its scope labels) — the worker runtime
    /// passes its rank-scoped registry so staging occupancy and
    /// push/pop rates surface in live telemetry.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new_in_registry(capacity: u64, registry: &Registry) -> Self {
        assert!(capacity > 0, "stage needs capacity");
        Self {
            inner: Arc::new(Inner {
                capacity,
                state: Mutex::new(State {
                    next: 0,
                    pending: BTreeMap::new(),
                    used: 0,
                    closed: false,
                    max_used: 0,
                }),
                metrics: Metrics {
                    pushed: registry.counter(names::STAGING_PUSHED),
                    popped: registry.counter(names::STAGING_POPPED),
                    used_bytes: registry.gauge(names::STAGING_USED_BYTES),
                },
                space: Condvar::new(),
                data: Condvar::new(),
            }),
        }
    }

    /// Inserts the sample for stream position `pos`, blocking while the
    /// stage is full — unless `pos` is the position the consumer needs
    /// next, which is always admitted immediately.
    ///
    /// Returns `false` if the stage was closed.
    ///
    /// # Panics
    /// Panics if `pos` was already pushed or already consumed (every
    /// stream position is fetched exactly once).
    pub fn push(&self, pos: u64, id: SampleId, data: Bytes) -> bool {
        let size = data.len() as u64;
        let mut st = self.inner.state.lock();
        assert!(pos >= st.next, "position {pos} already consumed");
        loop {
            if st.closed {
                return false;
            }
            if pos == st.next || st.used + size <= self.inner.capacity {
                break;
            }
            self.inner.space.wait(&mut st);
        }
        let prev = st.pending.insert(pos, (id, data));
        assert!(prev.is_none(), "position {pos} pushed twice");
        st.used += size;
        st.max_used = st.max_used.max(st.used);
        self.inner.metrics.pushed.inc();
        self.inner.metrics.used_bytes.set(st.used);
        drop(st);
        self.inner.data.notify_all();
        true
    }

    /// Pops the sample at the next stream position, blocking until it
    /// arrives. Returns `None` once closed and the head is unavailable.
    pub fn pop(&self) -> Option<(SampleId, Bytes)> {
        let mut st = self.inner.state.lock();
        loop {
            let next = st.next;
            if let Some((id, data)) = st.pending.remove(&next) {
                st.used -= data.len() as u64;
                st.next += 1;
                self.inner.metrics.popped.inc();
                self.inner.metrics.used_bytes.set(st.used);
                drop(st);
                self.inner.space.notify_all();
                return Some((id, data));
            }
            if st.closed {
                return None;
            }
            self.inner.data.wait(&mut st);
        }
    }

    /// Like [`Self::pop`] with a wall-clock timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(SampleId, Bytes)> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            let next = st.next;
            if let Some((id, data)) = st.pending.remove(&next) {
                st.used -= data.len() as u64;
                st.next += 1;
                self.inner.metrics.popped.inc();
                self.inner.metrics.used_bytes.set(st.used);
                drop(st);
                self.inner.space.notify_all();
                return Some((id, data));
            }
            if st.closed {
                return None;
            }
            if self.inner.data.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Closes the stage; blocked producers and consumers return.
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        drop(st);
        self.inner.space.notify_all();
        self.inner.data.notify_all();
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> u64 {
        self.inner.state.lock().used
    }

    /// The stream position the consumer will receive next.
    pub fn next_position(&self) -> u64 {
        self.inner.state.lock().next
    }

    /// High-water mark of buffered bytes.
    pub fn max_used(&self) -> u64 {
        self.inner.state.lock().max_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn out_of_order_push_in_order_pop() {
        let stage = ReorderStage::new(1_000);
        stage.push(2, 102, Bytes::from_static(b"c"));
        stage.push(0, 100, Bytes::from_static(b"a"));
        stage.push(1, 101, Bytes::from_static(b"b"));
        assert_eq!(stage.pop().unwrap().0, 100);
        assert_eq!(stage.pop().unwrap().0, 101);
        assert_eq!(stage.pop().unwrap().0, 102);
    }

    #[test]
    fn consumer_waits_for_the_head_not_just_any_sample() {
        let stage = ReorderStage::new(1_000);
        stage.push(1, 11, Bytes::from_static(b"later"));
        let s2 = stage.clone();
        let consumer = thread::spawn(move || s2.pop().unwrap());
        thread::sleep(Duration::from_millis(20));
        assert!(!consumer.is_finished(), "pop must wait for position 0");
        stage.push(0, 10, Bytes::from_static(b"first"));
        assert_eq!(consumer.join().unwrap().0, 10);
    }

    #[test]
    fn head_position_is_always_admitted() {
        // Fill the stage with a future position, then push the head:
        // it must not block even though capacity is exceeded.
        let stage = ReorderStage::new(10);
        stage.push(1, 1, Bytes::from(vec![0u8; 10]));
        let t0 = Instant::now();
        assert!(stage.push(0, 0, Bytes::from(vec![0u8; 10])));
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert_eq!(stage.pop().unwrap().0, 0);
        assert_eq!(stage.pop().unwrap().0, 1);
    }

    #[test]
    fn non_head_producer_blocks_when_full() {
        let stage = ReorderStage::new(10);
        stage.push(1, 1, Bytes::from(vec![0u8; 10]));
        let s2 = stage.clone();
        let producer = thread::spawn(move || s2.push(2, 2, Bytes::from(vec![0u8; 10])));
        thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "position 2 should block");
        stage.push(0, 0, Bytes::from(vec![0u8; 4]));
        stage.pop().unwrap(); // frees pos 0's bytes and advances next
        stage.pop().unwrap(); // consumes pos 1, frees space
        assert!(producer.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_position_panics() {
        let stage = ReorderStage::new(100);
        stage.push(0, 1, Bytes::from_static(b"a"));
        stage.push(0, 2, Bytes::from_static(b"b"));
    }

    #[test]
    fn close_unblocks_everyone() {
        let stage = ReorderStage::new(10);
        let s2 = stage.clone();
        let consumer = thread::spawn(move || s2.pop());
        thread::sleep(Duration::from_millis(10));
        stage.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert!(!stage.push(0, 0, Bytes::from_static(b"x")));
    }

    #[test]
    fn pop_timeout_on_missing_head() {
        let stage = ReorderStage::new(100);
        stage.push(5, 5, Bytes::from_static(b"future"));
        assert!(stage.pop_timeout(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn many_producers_full_stream_integrity() {
        let stage = ReorderStage::new(64);
        let n = 500u64;
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let stage = stage.clone();
                let counter = Arc::clone(&counter);
                thread::spawn(move || loop {
                    let pos = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    if pos >= n {
                        break;
                    }
                    // Sample id encodes the position for verification.
                    stage.push(pos, pos * 3, Bytes::from(vec![(pos % 256) as u8; 8]));
                })
            })
            .collect();
        for pos in 0..n {
            let (id, data) = stage.pop().unwrap();
            assert_eq!(id, pos * 3, "wrong sample at position {pos}");
            assert_eq!(data[0], (pos % 256) as u8);
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(stage.used(), 0);
    }
}
