//! Storage backends (paper Sec. 5.2.2).
//!
//! "Storage backends need only implement a generic interface, and NoPFS
//! currently supports filesystem- and memory-based storage backends,
//! which are sufficient to support most storage classes (including RAM,
//! SSDs, and HDDs)." The same split exists here: [`StorageBackend`] is
//! the generic interface, [`MemoryBackend`] and [`FsBackend`] are the
//! two implementations, and [`ThrottledBackend`] wraps either with
//! aggregate read/write token buckets so that a RAM-backed store can
//! stand in for any device with `r_j(p)`/`w_j(p)` curves — how the
//! runtime experiments model SSD tiers without SSD hardware.

use crate::shard::ShardedMap;
use crate::SampleId;
use bytes::Bytes;
use nopfs_util::rate::TokenBucket;
use nopfs_util::timing::TimeScale;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reserves `size - existing` bytes of `capacity` in `used` with a CAS
/// loop. Callers hold the id's shard write lock, which pins `existing`
/// (same-id writers need the same shard lock); other shards' traffic
/// just makes the CAS retry. Returns the free-space count on failure.
fn reserve_bytes(used: &AtomicU64, capacity: u64, existing: u64, size: u64) -> Result<(), u64> {
    used.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
        let new_used = u - existing + size;
        (new_used <= capacity).then_some(new_used)
    })
    .map(|_| ())
    .map_err(|u| capacity.saturating_sub(u - existing))
}

/// Backend errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The sample would exceed the backend's capacity.
    Full {
        /// Bytes the insert needed.
        needed: u64,
        /// Bytes still free.
        available: u64,
    },
    /// Underlying I/O failed.
    Io(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Full { needed, available } => {
                write!(f, "backend full: need {needed} bytes, {available} free")
            }
            BackendError::Io(msg) => write!(f, "backend I/O error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// The generic storage-backend interface: a capacity-bounded map from
/// sample id to bytes. All methods are thread-safe.
pub trait StorageBackend: Send + Sync {
    /// Human-readable name ("memory", "fs", "ram", "ssd", …).
    fn name(&self) -> &str;

    /// Capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes currently stored.
    fn used(&self) -> u64;

    /// Stores a sample. Fails with [`BackendError::Full`] when it does
    /// not fit (NoPFS placement never overfills, so this signals a
    /// policy bug or a raced insert).
    fn insert(&self, id: SampleId, data: Bytes) -> Result<(), BackendError>;

    /// Retrieves a sample, paying the backend's read cost.
    fn get(&self, id: SampleId) -> Option<Bytes>;

    /// Whether the sample is present (metadata only; free).
    fn contains(&self, id: SampleId) -> bool;

    /// Removes a sample, returning whether it was present.
    fn evict(&self, id: SampleId) -> bool;

    /// Number of stored samples.
    fn count(&self) -> usize;

    /// Size in bytes of a stored sample (metadata only; free).
    fn size_of(&self, id: SampleId) -> Option<u64>;
}

/// An in-memory backend (models RAM classes).
///
/// The id→bytes store is an N-way [`ShardedMap`], so concurrent readers
/// of different samples take different locks, and capacity accounting
/// is a CAS on a relaxed atomic rather than a global critical section —
/// the fetch hot path never serializes on one lock word.
pub struct MemoryBackend {
    name: String,
    capacity: u64,
    used: AtomicU64,
    map: ShardedMap<Bytes>,
}

impl MemoryBackend {
    /// Creates a memory backend with the given byte capacity.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Self {
            name: name.into(),
            capacity,
            used: AtomicU64::new(0),
            map: ShardedMap::new(),
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    fn insert(&self, id: SampleId, data: Bytes) -> Result<(), BackendError> {
        let size = data.len() as u64;
        let mut shard = self.map.shard(id).write();
        let existing = shard.get(&id).map_or(0, |b| b.len() as u64);
        reserve_bytes(&self.used, self.capacity, existing, size).map_err(|available| {
            BackendError::Full {
                needed: size,
                available,
            }
        })?;
        shard.insert(id, data);
        Ok(())
    }

    fn get(&self, id: SampleId) -> Option<Bytes> {
        self.map.get(id)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.map.contains(id)
    }

    fn evict(&self, id: SampleId) -> bool {
        let mut shard = self.map.shard(id).write();
        if let Some(b) = shard.remove(&id) {
            self.used.fetch_sub(b.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn count(&self) -> usize {
        self.map.len()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.map.with(id, |b| b.len() as u64)
    }
}

/// A filesystem backend storing one file per sample (models node-local
/// SSD/HDD classes; the paper's implementation uses `mmap`, ours uses
/// plain reads — the throttle wrapper supplies realistic timing either
/// way).
pub struct FsBackend {
    name: String,
    capacity: u64,
    dir: PathBuf,
    used: AtomicU64,
    /// Present ids and sizes (avoids stat calls), sharded so lookups on
    /// different samples never contend.
    index: ShardedMap<u64>,
}

impl FsBackend {
    /// Creates a filesystem backend rooted at `dir` (created if absent).
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn new(name: impl Into<String>, dir: impl Into<PathBuf>, capacity: u64) -> Self {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).expect("failed to create backend directory");
        Self {
            name: name.into(),
            capacity,
            dir,
            used: AtomicU64::new(0),
            index: ShardedMap::new(),
        }
    }

    fn path(&self, id: SampleId) -> PathBuf {
        self.dir.join(format!("{id}.smp"))
    }
}

impl StorageBackend for FsBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    fn insert(&self, id: SampleId, data: Bytes) -> Result<(), BackendError> {
        let size = data.len() as u64;
        let mut shard = self.index.shard(id).write();
        let existing = shard.get(&id).copied().unwrap_or(0);
        reserve_bytes(&self.used, self.capacity, existing, size).map_err(|available| {
            BackendError::Full {
                needed: size,
                available,
            }
        })?;
        if let Err(e) = std::fs::write(self.path(id), &data) {
            // Roll back the reservation: the file never landed. An
            // overwrite by a smaller sample shrank `used`, so the
            // rollback direction depends on the delta's sign.
            if size >= existing {
                self.used.fetch_sub(size - existing, Ordering::Relaxed);
            } else {
                self.used.fetch_add(existing - size, Ordering::Relaxed);
            }
            return Err(BackendError::Io(e.to_string()));
        }
        shard.insert(id, size);
        Ok(())
    }

    fn get(&self, id: SampleId) -> Option<Bytes> {
        if !self.index.contains(id) {
            return None;
        }
        std::fs::read(self.path(id)).ok().map(Bytes::from)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.index.contains(id)
    }

    fn evict(&self, id: SampleId) -> bool {
        let mut shard = self.index.shard(id).write();
        if let Some(size) = shard.remove(&id) {
            self.used.fetch_sub(size, Ordering::Relaxed);
            std::fs::remove_file(self.path(id)).ok();
            true
        } else {
            false
        }
    }

    fn count(&self) -> usize {
        self.index.len()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.index.get(id)
    }
}

/// Wraps a backend with aggregate read/write token buckets so its
/// timing follows modelled `r_j(p)`/`w_j(p)` device curves.
pub struct ThrottledBackend<B: StorageBackend> {
    inner: B,
    read_bucket: Arc<TokenBucket>,
    write_bucket: Arc<TokenBucket>,
}

impl<B: StorageBackend> ThrottledBackend<B> {
    /// Creates a throttle with aggregate `read_rate`/`write_rate` in
    /// model bytes/second under `scale`.
    pub fn new(inner: B, read_rate: f64, write_rate: f64, scale: TimeScale) -> Self {
        Self {
            inner,
            read_bucket: Arc::new(TokenBucket::with_burst_window(
                scale.rate_to_wall(read_rate),
                0.005,
            )),
            write_bucket: Arc::new(TokenBucket::with_burst_window(
                scale.rate_to_wall(write_rate),
                0.005,
            )),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: StorageBackend> StorageBackend for ThrottledBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn insert(&self, id: SampleId, data: Bytes) -> Result<(), BackendError> {
        self.write_bucket.acquire(data.len() as u64);
        self.inner.insert(id, data)
    }

    fn get(&self, id: SampleId) -> Option<Bytes> {
        let data = self.inner.get(id)?;
        self.read_bucket.acquire(data.len() as u64);
        Some(data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nopfs-backend-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn backend_contract(b: &dyn StorageBackend) {
        assert_eq!(b.used(), 0);
        assert_eq!(b.count(), 0);
        b.insert(1, Bytes::from(vec![1u8; 40])).unwrap();
        b.insert(2, Bytes::from(vec![2u8; 40])).unwrap();
        assert_eq!(b.used(), 80);
        assert_eq!(b.count(), 2);
        assert!(b.contains(1));
        assert_eq!(b.get(1).unwrap(), Bytes::from(vec![1u8; 40]));
        // Third insert exceeds the 100-byte capacity.
        match b.insert(3, Bytes::from(vec![3u8; 40])) {
            Err(BackendError::Full { needed, available }) => {
                assert_eq!(needed, 40);
                assert_eq!(available, 20);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(b.size_of(1), Some(40));
        assert_eq!(b.size_of(3), None);
        // Replacing an existing sample reuses its space.
        b.insert(1, Bytes::from(vec![9u8; 50])).unwrap();
        assert_eq!(b.used(), 90);
        assert_eq!(b.get(1).unwrap()[0], 9);
        assert!(b.evict(2));
        assert!(!b.evict(2));
        assert_eq!(b.used(), 50);
        assert!(b.get(2).is_none());
        assert!(!b.contains(2));
    }

    #[test]
    fn memory_backend_contract() {
        backend_contract(&MemoryBackend::new("memory", 100));
    }

    #[test]
    fn fs_backend_contract() {
        let dir = tmp_dir("contract");
        backend_contract(&FsBackend::new("fs", &dir, 100));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fs_backend_persists_real_files() {
        let dir = tmp_dir("files");
        let b = FsBackend::new("fs", &dir, 1_000);
        b.insert(42, Bytes::from_static(b"payload")).unwrap();
        let on_disk = std::fs::read(dir.join("42.smp")).unwrap();
        assert_eq!(on_disk, b"payload");
        b.evict(42);
        assert!(!dir.join("42.smp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn throttled_reads_follow_rate() {
        // 10 MB/s read rate: reading 1 MB takes ~100 ms.
        let b = ThrottledBackend::new(
            MemoryBackend::new("ssd", 10_000_000),
            10.0e6,
            1.0e9,
            TimeScale::realtime(),
        );
        b.insert(1, Bytes::from(vec![0u8; 1_000_000])).unwrap();
        b.get(1).unwrap(); // drain burst
        let t0 = Instant::now();
        b.get(1).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.07, "read too fast: {dt}");
        assert!(dt < 0.5, "read too slow: {dt}");
    }

    #[test]
    fn throttled_writes_follow_rate() {
        let b = ThrottledBackend::new(
            MemoryBackend::new("ssd", 10_000_000),
            1.0e9,
            10.0e6,
            TimeScale::realtime(),
        );
        b.insert(1, Bytes::from(vec![0u8; 200_000])).unwrap();
        let t0 = Instant::now();
        b.insert(2, Bytes::from(vec![0u8; 1_000_000])).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.07, "write too fast: {dt}");
    }

    #[test]
    fn throttle_preserves_contract() {
        let b = ThrottledBackend::new(
            MemoryBackend::new("memory", 100),
            1.0e12,
            1.0e12,
            TimeScale::realtime(),
        );
        backend_contract(&b);
        assert_eq!(b.name(), "memory");
        assert_eq!(b.inner().name(), "memory");
    }

    #[test]
    fn concurrent_inserts_respect_capacity() {
        let b = Arc::new(MemoryBackend::new("memory", 1_000));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for i in 0..50u64 {
                        if b.insert(t * 100 + i, Bytes::from(vec![0u8; 10])).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "exactly capacity/size inserts succeed");
        assert_eq!(b.used(), 1_000);
    }
}
