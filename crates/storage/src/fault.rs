//! Fault injection and retry for the storage hierarchy.
//!
//! Production traces of ML storage backends (and the cloud-storage
//! characterization literature) show transient read errors are the
//! norm, not the exception: loaders must retry with backoff rather
//! than crash. This module provides both halves as [`DataSource`]
//! wrappers, so they slot *beneath* a [`crate::TierStack`] — typically
//! around the PFS origin — without the fetch paths above knowing:
//!
//! - [`FaultySource`] deterministically injects transient
//!   [`SourceError::Io`] failures on reads, in bounded bursts, from a
//!   seed (the same seed reproduces the same failure pattern);
//! - [`RetryingSource`] retries transient failures with seeded,
//!   jittered exponential backoff, and refuses to retry permanent
//!   errors ([`SourceError::NotFound`] / [`SourceError::Full`] — a
//!   missing sample does not come back, no matter how often one asks).
//!
//! Stacked as `RetryingSource(FaultySource(origin))` with a retry
//! budget exceeding the burst bound, every read eventually succeeds —
//! the "transient by construction" contract the elastic runtime's
//! fault plans rely on.

use crate::tier::{DataSource, SourceError};
use crate::SampleId;
use bytes::Bytes;
use nopfs_util::rng::mix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Converts a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of deterministic transient-error injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorInjection {
    /// Probability that a fresh read starts a failure burst.
    pub rate: f64,
    /// Maximum consecutive failures per burst (≥ 1). A retry budget
    /// larger than this bound is guaranteed to succeed eventually.
    pub max_burst: u32,
    /// Seed of the failure pattern.
    pub seed: u64,
}

impl ErrorInjection {
    /// A new injection spec.
    ///
    /// # Panics
    /// Panics on a rate outside `[0, 1)` or a zero burst bound.
    pub fn new(rate: f64, max_burst: u32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        assert!(max_burst >= 1, "bursts contain at least one failure");
        Self {
            rate,
            max_burst,
            seed,
        }
    }
}

/// Per-sample burst state of a [`FaultySource`].
#[derive(Debug, Clone, Copy, Default)]
struct BurstState {
    /// Failures still owed in the current burst.
    pending: u32,
    /// Bursts started so far (the per-id draw counter).
    bursts: u64,
    /// The read right after a burst is guaranteed to succeed, bounding
    /// consecutive failures at `max_burst` regardless of draws.
    cooldown: bool,
}

/// A [`DataSource`] wrapper injecting transient read errors in bounded
/// bursts: when a read of sample `k` draws a failure (probability
/// `rate`, deterministic in the seed and the per-sample draw count),
/// the next `1..=max_burst` reads of `k` fail with
/// [`SourceError::Io`], after which one read is guaranteed clean.
/// Writes and metadata are untouched.
pub struct FaultySource {
    inner: Arc<dyn DataSource>,
    spec: ErrorInjection,
    state: Mutex<HashMap<SampleId, BurstState>>,
    injected: AtomicU64,
}

impl std::fmt::Debug for FaultySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultySource")
            .field("inner", &self.inner.name())
            .field("spec", &self.spec)
            .field("injected", &self.injected)
            .finish()
    }
}

impl FaultySource {
    /// Wraps `inner` with the given injection spec.
    pub fn new(inner: Arc<dyn DataSource>, spec: ErrorInjection) -> Self {
        Self {
            inner,
            spec,
            state: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total injected failures so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether this read should fail (and bookkeeping for the burst).
    fn should_fail(&self, id: SampleId) -> bool {
        let mut st = self.state.lock();
        let s = st.entry(id).or_default();
        if s.pending > 0 {
            s.pending -= 1;
            s.cooldown = s.pending == 0;
            return true;
        }
        if s.cooldown {
            s.cooldown = false;
            return false;
        }
        let h = mix64(self.spec.seed, mix64(id, s.bursts));
        s.bursts += 1;
        if unit(h) < self.spec.rate {
            // Burst length 1..=max_burst; this read is the first failure.
            s.pending = (h >> 32) as u32 % self.spec.max_burst;
            s.cooldown = s.pending == 0;
            return true;
        }
        false
    }
}

impl DataSource for FaultySource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        if self.should_fail(id) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Io(format!(
                "injected transient fault on sample {id}"
            )));
        }
        self.inner.read(id)
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

/// Retry schedule: bounded attempts with seeded, jittered exponential
/// backoff. Pure — [`RetryPolicy::backoff`] is a function of the
/// attempt number and a draw counter, so jitter bounds are testable
/// without clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total read attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a seeded
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed of the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// A new policy.
    ///
    /// # Panics
    /// Panics on zero attempts or jitter outside `[0, 1)`.
    pub fn new(attempts: u32, base_backoff: Duration, jitter: f64, seed: u64) -> Self {
        assert!(attempts >= 1, "at least one attempt");
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        Self {
            attempts,
            base_backoff,
            jitter,
            seed,
        }
    }

    /// The backoff before retry number `retry` (0-based), using `draw`
    /// as the jitter counter. Always within
    /// `base · 2^retry · [1 - jitter, 1 + jitter]`.
    pub fn backoff(&self, retry: u32, draw: u64) -> Duration {
        let base = self.base_backoff.as_secs_f64() * f64::from(1u32 << retry.min(20));
        let u = unit(mix64(self.seed, draw));
        let factor = 1.0 + self.jitter * (2.0 * u - 1.0);
        Duration::from_secs_f64(base * factor)
    }
}

/// A [`DataSource`] wrapper that retries transient read failures
/// ([`SourceError::Io`]) under a [`RetryPolicy`], sleeping the jittered
/// backoff between attempts. Permanent errors — [`SourceError::NotFound`]
/// and [`SourceError::Full`] — are returned immediately: retrying them
/// cannot help and only masks a broken dataset.
pub struct RetryingSource {
    inner: Arc<dyn DataSource>,
    policy: RetryPolicy,
    draws: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

impl std::fmt::Debug for RetryingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingSource")
            .field("inner", &self.inner.name())
            .field("policy", &self.policy)
            .field("retries", &self.retries)
            .finish()
    }
}

impl RetryingSource {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: Arc<dyn DataSource>, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            draws: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Total retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Reads whose whole retry budget was exhausted.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

impl DataSource for RetryingSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        let mut last = None;
        for attempt in 0..self.policy.attempts {
            match self.inner.read(id) {
                Ok(data) => return Ok(data),
                Err(e @ (SourceError::NotFound(_) | SourceError::Full { .. })) => {
                    // Permanent: no retry.
                    return Err(e);
                }
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < self.policy.attempts {
                        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.policy.backoff(attempt, draw));
                    }
                }
            }
        }
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        Err(last.expect("loop ran at least once"))
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, StorageBackend};

    /// A source whose reads always fail transiently, counting attempts.
    #[derive(Debug)]
    struct AlwaysIo {
        attempts: AtomicU64,
    }

    impl DataSource for AlwaysIo {
        fn name(&self) -> &str {
            "always-io"
        }
        fn read(&self, _id: SampleId) -> Result<Bytes, SourceError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            Err(SourceError::Io("down".into()))
        }
        fn write(&self, _id: SampleId, _data: Bytes) -> Result<(), SourceError> {
            Ok(())
        }
        fn contains(&self, _id: SampleId) -> bool {
            false
        }
        fn capacity(&self) -> Option<u64> {
            None
        }
        fn used(&self) -> u64 {
            0
        }
        fn evict(&self, _id: SampleId) -> bool {
            false
        }
        fn count(&self) -> usize {
            0
        }
        fn size_of(&self, _id: SampleId) -> Option<u64> {
            None
        }
    }

    fn mem_with(ids: &[SampleId]) -> Arc<dyn DataSource> {
        let m = MemoryBackend::new("mem", 1_000_000);
        for &id in ids {
            m.insert(id, Bytes::from(vec![id as u8; 8])).unwrap();
        }
        Arc::new(m)
    }

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts, Duration::from_micros(10), 0.5, 7)
    }

    #[test]
    fn exhausted_retries_surface_the_last_transient_error() {
        let counter = Arc::new(AlwaysIo {
            attempts: AtomicU64::new(0),
        });
        let retry = RetryingSource::new(counter.clone() as Arc<dyn DataSource>, fast_policy(4));
        match retry.read(3) {
            Err(SourceError::Io(m)) => assert_eq!(m, "down"),
            other => panic!("expected Io, got {other:?}"),
        }
        // Exactly the whole budget was spent: 4 attempts, 3 retries.
        assert_eq!(counter.attempts.load(Ordering::Relaxed), 4);
        assert_eq!(retry.retries(), 3);
        assert_eq!(retry.exhausted(), 1);
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        // NotFound: a single attempt, returned verbatim.
        let empty = mem_with(&[]);
        let retry = RetryingSource::new(empty, fast_policy(5));
        assert_eq!(retry.read(9), Err(SourceError::NotFound(9)));
        assert_eq!(retry.retries(), 0);
        assert_eq!(retry.exhausted(), 0);
    }

    #[test]
    fn jitter_stays_within_documented_bounds() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), 0.25, 0xBEEF);
        for retry in 0..4u32 {
            let base = 0.010 * f64::from(1u32 << retry);
            let (lo, hi) = (base * 0.75, base * 1.25);
            let mut spread = (f64::MAX, f64::MIN);
            for draw in 0..200u64 {
                let b = p.backoff(retry, draw).as_secs_f64();
                assert!(
                    (lo..=hi).contains(&b),
                    "retry {retry} draw {draw}: {b} outside [{lo}, {hi}]"
                );
                spread = (spread.0.min(b), spread.1.max(b));
            }
            // The jitter actually jitters: draws spread over the range.
            assert!(spread.1 - spread.0 > 0.2 * (hi - lo));
        }
        // Zero jitter is exact exponential backoff.
        let p0 = RetryPolicy::new(3, Duration::from_millis(10), 0.0, 1);
        assert_eq!(p0.backoff(2, 42), Duration::from_millis(40));
    }

    #[test]
    fn injected_bursts_are_bounded_and_deterministic() {
        let spec = ErrorInjection::new(0.3, 3, 0xFA);
        let run = || {
            let f = FaultySource::new(mem_with(&[0, 1, 2, 3]), spec);
            let mut outcomes = Vec::new();
            for _ in 0..200 {
                for id in 0..4u64 {
                    outcomes.push(f.read(id).is_ok());
                }
            }
            (outcomes, f.injected())
        };
        let (a, injected) = run();
        let (b, _) = run();
        assert_eq!(a, b, "same seed, same failure pattern");
        assert!(injected > 0, "rate 0.3 over 800 reads must inject");
        // Burst bound: per id, never more than max_burst consecutive
        // failures (a success always follows within 3).
        for id in 0..4usize {
            let per_id: Vec<bool> = a.iter().skip(id).step_by(4).copied().collect();
            let mut consecutive = 0u32;
            for ok in per_id {
                if ok {
                    consecutive = 0;
                } else {
                    consecutive += 1;
                    assert!(consecutive <= 3, "burst exceeded bound on sample {id}");
                }
            }
        }
    }

    #[test]
    fn retry_over_injection_always_succeeds() {
        // attempts > max_burst: the cooldown guarantee makes every read
        // eventually succeed, whatever the seed.
        for seed in 0..20u64 {
            let faulty = Arc::new(FaultySource::new(
                mem_with(&[0, 1, 2]),
                ErrorInjection::new(0.45, 2, seed),
            ));
            let retry = RetryingSource::new(faulty, fast_policy(4));
            for round in 0..50 {
                for id in 0..3u64 {
                    let data = retry
                        .read(id)
                        .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
                    assert_eq!(data[0], id as u8);
                }
            }
            assert_eq!(retry.exhausted(), 0);
        }
    }

    #[test]
    fn metadata_and_writes_pass_through_both_wrappers() {
        let faulty = Arc::new(FaultySource::new(
            mem_with(&[5]),
            ErrorInjection::new(0.0, 1, 0),
        ));
        let retry = RetryingSource::new(faulty, fast_policy(2));
        assert_eq!(retry.name(), "mem");
        assert!(retry.contains(5));
        assert_eq!(retry.size_of(5), Some(8));
        retry.write(6, Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(retry.count(), 2);
        assert!(retry.evict(6));
        assert_eq!(retry.count(), 1);
    }
}
