//! Fault injection and retry for the storage hierarchy.
//!
//! Production traces of ML storage backends (and the cloud-storage
//! characterization literature) show transient read errors are the
//! norm, not the exception: loaders must retry with backoff rather
//! than crash. This module provides both halves as [`DataSource`]
//! wrappers, so they slot *beneath* a [`crate::TierStack`] — typically
//! around the PFS origin — without the fetch paths above knowing:
//!
//! - [`FaultySource`] deterministically injects transient
//!   [`SourceError::Io`] failures on reads, in bounded bursts, from a
//!   seed (the same seed reproduces the same failure pattern);
//! - [`RetryingSource`] retries retryable failures (per the
//!   [`crate::ErrorClass`] taxonomy) with seeded, capped, full-jitter
//!   exponential backoff, and refuses to retry permanent errors
//!   ([`SourceError::NotFound`] / [`SourceError::Full`] /
//!   [`SourceError::Unavailable`] — a missing sample does not come
//!   back, no matter how often one asks).
//!
//! Stacked as `RetryingSource(FaultySource(origin))` with a retry
//! budget exceeding the burst bound, every read eventually succeeds —
//! the "transient by construction" contract the elastic runtime's
//! fault plans rely on.

use crate::tier::{DataSource, SourceError};
use crate::SampleId;
use bytes::Bytes;
use nopfs_util::rng::mix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Converts a hash to a uniform draw in `[0, 1)`.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of deterministic transient-error injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorInjection {
    /// Probability that a fresh read starts a failure burst.
    pub rate: f64,
    /// Maximum consecutive failures per burst (≥ 1). A retry budget
    /// larger than this bound is guaranteed to succeed eventually.
    pub max_burst: u32,
    /// Seed of the failure pattern.
    pub seed: u64,
}

impl ErrorInjection {
    /// A new injection spec.
    ///
    /// # Panics
    /// Panics on a rate outside `[0, 1)` or a zero burst bound.
    pub fn new(rate: f64, max_burst: u32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        assert!(max_burst >= 1, "bursts contain at least one failure");
        Self {
            rate,
            max_burst,
            seed,
        }
    }
}

/// Per-sample burst state of a [`FaultySource`].
#[derive(Debug, Clone, Copy, Default)]
struct BurstState {
    /// Failures still owed in the current burst.
    pending: u32,
    /// Bursts started so far (the per-id draw counter).
    bursts: u64,
    /// The read right after a burst is guaranteed to succeed, bounding
    /// consecutive failures at `max_burst` regardless of draws.
    cooldown: bool,
}

/// A [`DataSource`] wrapper injecting transient read errors in bounded
/// bursts: when a read of sample `k` draws a failure (probability
/// `rate`, deterministic in the seed and the per-sample draw count),
/// the next `1..=max_burst` reads of `k` fail with
/// [`SourceError::Io`], after which one read is guaranteed clean.
/// Writes and metadata are untouched.
pub struct FaultySource {
    inner: Arc<dyn DataSource>,
    spec: ErrorInjection,
    state: Mutex<HashMap<SampleId, BurstState>>,
    injected: AtomicU64,
}

impl std::fmt::Debug for FaultySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultySource")
            .field("inner", &self.inner.name())
            .field("spec", &self.spec)
            .field("injected", &self.injected)
            .finish()
    }
}

impl FaultySource {
    /// Wraps `inner` with the given injection spec.
    pub fn new(inner: Arc<dyn DataSource>, spec: ErrorInjection) -> Self {
        Self {
            inner,
            spec,
            state: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total injected failures so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether this read should fail (and bookkeeping for the burst).
    fn should_fail(&self, id: SampleId) -> bool {
        let mut st = self.state.lock();
        let s = st.entry(id).or_default();
        if s.pending > 0 {
            s.pending -= 1;
            s.cooldown = s.pending == 0;
            return true;
        }
        if s.cooldown {
            s.cooldown = false;
            return false;
        }
        let h = mix64(self.spec.seed, mix64(id, s.bursts));
        s.bursts += 1;
        if unit(h) < self.spec.rate {
            // Burst length 1..=max_burst; this read is the first failure.
            s.pending = (h >> 32) as u32 % self.spec.max_burst;
            s.cooldown = s.pending == 0;
            return true;
        }
        false
    }
}

impl DataSource for FaultySource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        if self.should_fail(id) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(SourceError::Io(format!(
                "injected transient fault on sample {id}"
            )));
        }
        self.inner.read(id)
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

/// Retry schedule: bounded attempts with capped exponential backoff and
/// seeded *full jitter* (the AWS-recommended decorrelation scheme —
/// each sleep is drawn from an interval below the exponential ceiling,
/// so synchronized clients spread out instead of retrying in lockstep).
/// Pure — [`RetryPolicy::backoff`] is a function of the attempt number
/// and a draw counter, so jitter bounds are testable without clocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total read attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Backoff ceiling before the first retry; doubles per further
    /// retry until it reaches `max_backoff`.
    pub base_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is drawn uniformly
    /// from `ceiling · [1 - jitter, 1]`. `1` is canonical full jitter
    /// (anywhere below the ceiling), `0` is deterministic exponential
    /// backoff.
    pub jitter: f64,
    /// Seed of the jitter sequence.
    pub seed: u64,
    /// Hard cap on the backoff ceiling: the exponential stops doubling
    /// here, so high attempt counts neither overflow nor produce
    /// unrealistic multi-hour sleeps.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A new policy with the default backoff cap of `1024 × base`.
    ///
    /// # Panics
    /// Panics on zero attempts or jitter outside `[0, 1]`.
    pub fn new(attempts: u32, base_backoff: Duration, jitter: f64, seed: u64) -> Self {
        assert!(attempts >= 1, "at least one attempt");
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        Self {
            attempts,
            base_backoff,
            jitter,
            seed,
            max_backoff: base_backoff.saturating_mul(1024),
        }
    }

    /// Replaces the backoff ceiling cap.
    #[must_use]
    pub fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// The exponential ceiling before retry number `retry` (0-based):
    /// `min(base · 2^retry, max_backoff)`, computed in floating point so
    /// arbitrarily high attempt counts saturate at the cap instead of
    /// overflowing a shift.
    pub fn ceiling(&self, retry: u32) -> Duration {
        let exp = 2f64.powi(retry.min(1024) as i32);
        let secs = (self.base_backoff.as_secs_f64() * exp).min(self.max_backoff.as_secs_f64());
        Duration::from_secs_f64(secs)
    }

    /// The backoff before retry number `retry` (0-based), using `draw`
    /// as the jitter counter. Always within
    /// `ceiling(retry) · [1 - jitter, 1]`.
    pub fn backoff(&self, retry: u32, draw: u64) -> Duration {
        let u = unit(mix64(self.seed, draw));
        let factor = (1.0 - self.jitter) + self.jitter * u;
        Duration::from_secs_f64(self.ceiling(retry).as_secs_f64() * factor)
    }
}

/// A [`DataSource`] wrapper that retries retryable read failures
/// (per [`SourceError::class`]) under a [`RetryPolicy`], sleeping the
/// jittered backoff between attempts — or the server-suggested
/// `retry_after`, whichever is longer, when the error is
/// [`SourceError::Throttled`]. Permanent errors ([`crate::ErrorClass::Permanent`]:
/// `NotFound`, `Full`, `Unavailable`) are returned immediately:
/// retrying them cannot help and only masks a broken dataset or an
/// open circuit.
pub struct RetryingSource {
    inner: Arc<dyn DataSource>,
    policy: RetryPolicy,
    draws: AtomicU64,
    retries: AtomicU64,
    exhausted: AtomicU64,
}

impl std::fmt::Debug for RetryingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryingSource")
            .field("inner", &self.inner.name())
            .field("policy", &self.policy)
            .field("retries", &self.retries)
            .finish()
    }
}

impl RetryingSource {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: Arc<dyn DataSource>, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            draws: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Total retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Reads whose whole retry budget was exhausted.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

impl DataSource for RetryingSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
        let mut last = None;
        for attempt in 0..self.policy.attempts {
            match self.inner.read(id) {
                Ok(data) => return Ok(data),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(e) => {
                    let mut wait = None;
                    if attempt + 1 < self.policy.attempts {
                        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        let backoff = self.policy.backoff(attempt, draw);
                        // A throttling backend sets the floor; the
                        // client's jittered backoff only ever adds.
                        wait = Some(match &e {
                            SourceError::Throttled { retry_after } => backoff.max(*retry_after),
                            _ => backoff,
                        });
                    }
                    last = Some(e);
                    if let Some(wait) = wait {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        Err(last.expect("loop ran at least once"))
    }

    /// Vectored read: one batched pass through the inner source's
    /// [`DataSource::read_many`] (so a coalescing origin keeps its
    /// batching), then each retryable straggler is re-driven through
    /// the single-read retry path with its full backoff schedule.
    /// Permanent errors are returned in place, unretried.
    fn read_many(&self, ids: &[SampleId]) -> Vec<Result<Bytes, SourceError>> {
        let mut results = self.inner.read_many(ids);
        for (r, &id) in results.iter_mut().zip(ids) {
            if matches!(r, Err(e) if e.is_retryable()) {
                self.retries.fetch_add(1, Ordering::Relaxed);
                *r = self.read(id);
            }
        }
        results
    }

    fn write(&self, id: SampleId, data: Bytes) -> Result<(), SourceError> {
        self.inner.write(id, data)
    }

    fn contains(&self, id: SampleId) -> bool {
        self.inner.contains(id)
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn evict(&self, id: SampleId) -> bool {
        self.inner.evict(id)
    }

    fn count(&self) -> usize {
        self.inner.count()
    }

    fn size_of(&self, id: SampleId) -> Option<u64> {
        self.inner.size_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemoryBackend, StorageBackend};

    /// A source whose reads always fail transiently, counting attempts.
    #[derive(Debug)]
    struct AlwaysIo {
        attempts: AtomicU64,
    }

    impl DataSource for AlwaysIo {
        fn name(&self) -> &str {
            "always-io"
        }
        fn read(&self, _id: SampleId) -> Result<Bytes, SourceError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            Err(SourceError::Io("down".into()))
        }
        fn write(&self, _id: SampleId, _data: Bytes) -> Result<(), SourceError> {
            Ok(())
        }
        fn contains(&self, _id: SampleId) -> bool {
            false
        }
        fn capacity(&self) -> Option<u64> {
            None
        }
        fn used(&self) -> u64 {
            0
        }
        fn evict(&self, _id: SampleId) -> bool {
            false
        }
        fn count(&self) -> usize {
            0
        }
        fn size_of(&self, _id: SampleId) -> Option<u64> {
            None
        }
    }

    fn mem_with(ids: &[SampleId]) -> Arc<dyn DataSource> {
        let m = MemoryBackend::new("mem", 1_000_000);
        for &id in ids {
            m.insert(id, Bytes::from(vec![id as u8; 8])).unwrap();
        }
        Arc::new(m)
    }

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts, Duration::from_micros(10), 0.5, 7)
    }

    #[test]
    fn exhausted_retries_surface_the_last_transient_error() {
        let counter = Arc::new(AlwaysIo {
            attempts: AtomicU64::new(0),
        });
        let retry = RetryingSource::new(counter.clone() as Arc<dyn DataSource>, fast_policy(4));
        match retry.read(3) {
            Err(SourceError::Io(m)) => assert_eq!(m, "down"),
            other => panic!("expected Io, got {other:?}"),
        }
        // Exactly the whole budget was spent: 4 attempts, 3 retries.
        assert_eq!(counter.attempts.load(Ordering::Relaxed), 4);
        assert_eq!(retry.retries(), 3);
        assert_eq!(retry.exhausted(), 1);
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        // NotFound: a single attempt, returned verbatim.
        let empty = mem_with(&[]);
        let retry = RetryingSource::new(empty, fast_policy(5));
        assert_eq!(retry.read(9), Err(SourceError::NotFound(9)));
        assert_eq!(retry.retries(), 0);
        assert_eq!(retry.exhausted(), 0);
    }

    #[test]
    fn full_jitter_stays_within_documented_bounds() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), 0.25, 0xBEEF);
        for retry in 0..4u32 {
            let ceil = 0.010 * f64::from(1u32 << retry);
            let (lo, hi) = (ceil * 0.75, ceil);
            let mut spread = (f64::MAX, f64::MIN);
            for draw in 0..200u64 {
                let b = p.backoff(retry, draw).as_secs_f64();
                assert!(
                    (lo..=hi).contains(&b),
                    "retry {retry} draw {draw}: {b} outside [{lo}, {hi}]"
                );
                spread = (spread.0.min(b), spread.1.max(b));
            }
            // The jitter actually jitters: draws spread over the range.
            assert!(spread.1 - spread.0 > 0.2 * (hi - lo));
        }
        // Canonical full jitter spans all the way down to (near) zero.
        let full = RetryPolicy::new(8, Duration::from_millis(10), 1.0, 0xBEEF);
        let draws: Vec<f64> = (0..500u64)
            .map(|d| full.backoff(0, d).as_secs_f64())
            .collect();
        assert!(draws.iter().all(|&b| (0.0..=0.010).contains(&b)));
        assert!(draws.iter().any(|&b| b < 0.002), "low tail never drawn");
        assert!(draws.iter().any(|&b| b > 0.008), "high tail never drawn");
        // Zero jitter is exact capped exponential backoff.
        let p0 = RetryPolicy::new(3, Duration::from_millis(10), 0.0, 1);
        assert_eq!(p0.backoff(2, 42), Duration::from_millis(40));
    }

    #[test]
    fn backoff_exponent_is_capped_at_high_attempt_counts() {
        // The pinning test for attempt ≥ 32: the old `1u32 << retry`
        // shift would overflow there. The ceiling must saturate at
        // `max_backoff` and stay finite for ANY attempt number.
        let p = RetryPolicy::new(64, Duration::from_millis(1), 0.0, 7)
            .with_max_backoff(Duration::from_millis(250));
        assert_eq!(p.ceiling(0), Duration::from_millis(1));
        assert_eq!(p.ceiling(7), Duration::from_millis(128));
        // From retry 8 on (2^8 ms > 250 ms) the cap rules.
        for retry in [8, 31, 32, 33, 64, 1_000, u32::MAX] {
            assert_eq!(
                p.ceiling(retry),
                Duration::from_millis(250),
                "retry {retry}"
            );
            assert_eq!(p.backoff(retry, 0), Duration::from_millis(250));
        }
        // Default cap: 1024 × base, so u32::MAX attempts stay sane.
        let d = RetryPolicy::new(2, Duration::from_micros(100), 0.0, 7);
        assert_eq!(d.ceiling(u32::MAX), Duration::from_micros(100) * 1024);
        // Full jitter below the cap still spans the documented range.
        let j = p.with_max_backoff(Duration::from_millis(100));
        let b = j.backoff(u32::MAX, 3).as_secs_f64();
        assert!((0.0..=0.100).contains(&b));
    }

    #[test]
    fn taxonomy_classifies_and_gates_retries() {
        use crate::tier::ErrorClass;
        let throttled = SourceError::Throttled {
            retry_after: Duration::from_millis(1),
        };
        let deadline = SourceError::DeadlineExceeded {
            deadline: Duration::from_millis(5),
        };
        assert_eq!(SourceError::Io("x".into()).class(), ErrorClass::Transient);
        assert_eq!(throttled.class(), ErrorClass::Throttled);
        assert_eq!(deadline.class(), ErrorClass::DeadlineExceeded);
        assert_eq!(SourceError::NotFound(1).class(), ErrorClass::Permanent);
        assert_eq!(
            SourceError::Full {
                needed: 1,
                available: 0
            }
            .class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            SourceError::Unavailable("open".into()).class(),
            ErrorClass::Permanent
        );
        assert!(throttled.is_retryable() && deadline.is_retryable());
        assert!(!SourceError::Unavailable("open".into()).is_retryable());
    }

    /// A source failing with a fixed error a set number of times.
    #[derive(Debug)]
    struct FailNTimes {
        error: SourceError,
        remaining: AtomicU64,
        attempts: AtomicU64,
    }

    impl FailNTimes {
        fn new(error: SourceError, n: u64) -> Self {
            Self {
                error,
                remaining: AtomicU64::new(n),
                attempts: AtomicU64::new(0),
            }
        }
    }

    impl DataSource for FailNTimes {
        fn name(&self) -> &str {
            "fail-n"
        }
        fn read(&self, id: SampleId) -> Result<Bytes, SourceError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            if self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_ok()
            {
                Err(self.error.clone())
            } else {
                Ok(Bytes::from(vec![id as u8; 4]))
            }
        }
        fn write(&self, _id: SampleId, _data: Bytes) -> Result<(), SourceError> {
            Ok(())
        }
        fn contains(&self, _id: SampleId) -> bool {
            true
        }
        fn capacity(&self) -> Option<u64> {
            None
        }
        fn used(&self) -> u64 {
            0
        }
        fn evict(&self, _id: SampleId) -> bool {
            false
        }
        fn count(&self) -> usize {
            0
        }
        fn size_of(&self, _id: SampleId) -> Option<u64> {
            None
        }
    }

    #[test]
    fn throttled_and_deadline_errors_are_retried_unavailable_is_not() {
        // Throttled: retried through, honoring retry_after as a floor.
        let throttled = Arc::new(FailNTimes::new(
            SourceError::Throttled {
                retry_after: Duration::from_micros(50),
            },
            2,
        ));
        let retry = RetryingSource::new(throttled.clone() as Arc<dyn DataSource>, fast_policy(4));
        assert_eq!(retry.read(7).unwrap()[0], 7);
        assert_eq!(retry.retries(), 2);
        // DeadlineExceeded: also retryable.
        let deadline = Arc::new(FailNTimes::new(
            SourceError::DeadlineExceeded {
                deadline: Duration::from_micros(10),
            },
            1,
        ));
        let retry = RetryingSource::new(deadline as Arc<dyn DataSource>, fast_policy(4));
        assert!(retry.read(1).is_ok());
        // Unavailable (open breaker downstream): fail-fast, one attempt.
        let open = Arc::new(FailNTimes::new(
            SourceError::Unavailable("circuit open".into()),
            10,
        ));
        let retry = RetryingSource::new(open.clone() as Arc<dyn DataSource>, fast_policy(5));
        assert!(matches!(retry.read(1), Err(SourceError::Unavailable(_))));
        assert_eq!(open.attempts.load(Ordering::Relaxed), 1);
        assert_eq!(retry.retries(), 0);
    }

    #[test]
    fn injected_bursts_are_bounded_and_deterministic() {
        let spec = ErrorInjection::new(0.3, 3, 0xFA);
        let run = || {
            let f = FaultySource::new(mem_with(&[0, 1, 2, 3]), spec);
            let mut outcomes = Vec::new();
            for _ in 0..200 {
                for id in 0..4u64 {
                    outcomes.push(f.read(id).is_ok());
                }
            }
            (outcomes, f.injected())
        };
        let (a, injected) = run();
        let (b, _) = run();
        assert_eq!(a, b, "same seed, same failure pattern");
        assert!(injected > 0, "rate 0.3 over 800 reads must inject");
        // Burst bound: per id, never more than max_burst consecutive
        // failures (a success always follows within 3).
        for id in 0..4usize {
            let per_id: Vec<bool> = a.iter().skip(id).step_by(4).copied().collect();
            let mut consecutive = 0u32;
            for ok in per_id {
                if ok {
                    consecutive = 0;
                } else {
                    consecutive += 1;
                    assert!(consecutive <= 3, "burst exceeded bound on sample {id}");
                }
            }
        }
    }

    #[test]
    fn retry_over_injection_always_succeeds() {
        // attempts > max_burst: the cooldown guarantee makes every read
        // eventually succeed, whatever the seed.
        for seed in 0..20u64 {
            let faulty = Arc::new(FaultySource::new(
                mem_with(&[0, 1, 2]),
                ErrorInjection::new(0.45, 2, seed),
            ));
            let retry = RetryingSource::new(faulty, fast_policy(4));
            for round in 0..50 {
                for id in 0..3u64 {
                    let data = retry
                        .read(id)
                        .unwrap_or_else(|e| panic!("seed {seed} round {round}: {e}"));
                    assert_eq!(data[0], id as u8);
                }
            }
            assert_eq!(retry.exhausted(), 0);
        }
    }

    #[test]
    fn read_many_retries_stragglers_and_keeps_permanent_errors() {
        // Transient injection below the retry budget: every present id
        // comes back clean from one vectored call; the absent id stays
        // NotFound without burning retries.
        for seed in 0..10u64 {
            let faulty = Arc::new(FaultySource::new(
                mem_with(&[0, 1, 2, 3]),
                ErrorInjection::new(0.45, 2, seed),
            ));
            let retry = RetryingSource::new(faulty, fast_policy(4));
            for round in 0..30 {
                let res = retry.read_many(&[0, 1, 9, 2, 3]);
                for (i, &id) in [0u64, 1, 9, 2, 3].iter().enumerate() {
                    if id == 9 {
                        assert_eq!(res[i], Err(SourceError::NotFound(9)));
                    } else {
                        let data = res[i]
                            .as_ref()
                            .unwrap_or_else(|e| panic!("seed {seed} round {round} id {id}: {e}"));
                        assert_eq!(data[0], id as u8);
                    }
                }
            }
            assert_eq!(retry.exhausted(), 0);
        }
    }

    #[test]
    fn metadata_and_writes_pass_through_both_wrappers() {
        let faulty = Arc::new(FaultySource::new(
            mem_with(&[5]),
            ErrorInjection::new(0.0, 1, 0),
        ));
        let retry = RetryingSource::new(faulty, fast_policy(2));
        assert_eq!(retry.name(), "mem");
        assert!(retry.contains(5));
        assert_eq!(retry.size_of(5), Some(8));
        retry.write(6, Bytes::from_static(b"abcd")).unwrap();
        assert_eq!(retry.count(), 2);
        assert!(retry.evict(6));
        assert_eq!(retry.count(), 1);
    }
}
