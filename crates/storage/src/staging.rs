//! The staging buffer: the producer/consumer boundary between NoPFS's
//! prefetcher threads and the training loop.
//!
//! The paper describes "a special prefetcher for the staging buffer,
//! which is filled in a circular manner" and coordinates with the
//! consumer "via a producer/consumer queue to ensure that the consumer
//! knows when samples are available, and that the prefetcher knows when
//! samples have been consumed (and therefore can be replaced)". This
//! implementation reproduces those semantics with a byte-capacity-
//! bounded FIFO of reference-counted buffers: producers block while the
//! buffer is full, the consumer blocks while it is empty, samples leave
//! in exactly the order they entered (access-stream order, Rule 1), and
//! consuming frees capacity immediately (drop-after-use, the paper's
//! approximation of Rules 2–4).

use crate::SampleId;
use bytes::Bytes;
use nopfs_obs::{names, Counter, Gauge, Registry};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    queue: VecDeque<(SampleId, Bytes)>,
    used: u64,
    closed: bool,
    /// High-water mark of `used`, for reporting.
    max_used: u64,
    /// Registered producers currently alive (see [`ProducerGuard`]).
    producers: usize,
    /// Registered producers that died without completing: their owed
    /// samples will never arrive, so consumers must not keep waiting.
    lost: usize,
}

/// The buffer's registry handles (`staging.*` metrics): cumulative
/// push/pop counters plus a live occupancy gauge. Updated inside the
/// state lock, so [`StagingStats`] snapshots stay internally
/// consistent.
#[derive(Debug)]
struct Metrics {
    pushed: Counter,
    popped: Counter,
    used_bytes: Gauge,
    /// Registry values at construction: a buffer attached to existing
    /// counter names (a relaunched worker in a shared registry) reports
    /// only its own pushes/pops through [`StagingBuffer::stats`].
    base_pushed: u64,
    base_popped: u64,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        let pushed = registry.counter(names::STAGING_PUSHED);
        let popped = registry.counter(names::STAGING_POPPED);
        Self {
            base_pushed: pushed.get(),
            base_popped: popped.get(),
            pushed,
            popped,
            used_bytes: registry.gauge(names::STAGING_USED_BYTES),
        }
    }
}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    state: Mutex<State>,
    metrics: Metrics,
    /// Signalled when space frees up (producers wait on this).
    space: Condvar,
    /// Signalled when data arrives (consumers wait on this).
    data: Condvar,
}

/// A byte-capacity-bounded FIFO staging buffer. Clone to share between
/// prefetcher threads and the consumer.
#[derive(Debug, Clone)]
pub struct StagingBuffer {
    inner: Arc<Inner>,
}

impl StagingBuffer {
    /// Creates a buffer holding up to `capacity` bytes of samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        Self::new_in_registry(capacity, &Registry::new())
    }

    /// Like [`Self::new`], but the `staging.*` metrics are registered
    /// in `registry` (with its scope labels) so the buffer's push/pop
    /// counters and occupancy gauge show up in live telemetry.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new_in_registry(capacity: u64, registry: &Registry) -> Self {
        assert!(capacity > 0, "staging buffer needs capacity");
        Self {
            inner: Arc::new(Inner {
                capacity,
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    used: 0,
                    closed: false,
                    max_used: 0,
                    producers: 0,
                    lost: 0,
                }),
                metrics: Metrics::new(registry),
                space: Condvar::new(),
                data: Condvar::new(),
            }),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> u64 {
        self.inner.state.lock().used
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a sample, blocking while the buffer lacks space.
    ///
    /// A sample larger than the whole capacity is admitted when the
    /// buffer is empty (otherwise it could never be staged at all);
    /// it simply occupies the buffer alone.
    ///
    /// Returns `false` if the buffer was closed (sample dropped).
    pub fn push(&self, id: SampleId, data: Bytes) -> bool {
        let size = data.len() as u64;
        let mut st = self.inner.state.lock();
        loop {
            if st.closed {
                return false;
            }
            let fits =
                st.used + size <= self.inner.capacity || (st.queue.is_empty() && st.used == 0);
            if fits {
                break;
            }
            self.inner.space.wait(&mut st);
        }
        st.used += size;
        st.max_used = st.max_used.max(st.used);
        self.inner.metrics.pushed.inc();
        self.inner.metrics.used_bytes.set(st.used);
        st.queue.push_back((id, data));
        drop(st);
        self.inner.data.notify_one();
        true
    }

    /// Registers a producer with the buffer. Hold the returned guard
    /// for the producer's lifetime and call [`ProducerGuard::complete`]
    /// on clean exit; dropping it without completing (a panic, a crash
    /// injected by a fault plan) marks the producer as dead, and
    /// consumers observe [`ProducerLost`] once the queue drains instead
    /// of blocking until timeout on samples that will never arrive.
    pub fn producer(&self) -> ProducerGuard {
        self.inner.state.lock().producers += 1;
        ProducerGuard {
            buf: self.clone(),
            completed: false,
        }
    }

    /// Registered producers that died without completing.
    pub fn lost_producers(&self) -> usize {
        self.inner.state.lock().lost
    }

    /// Removes the oldest sample, blocking until one is available.
    /// Returns `None` once the buffer is closed *and* drained, or as
    /// soon as a registered producer is known dead (use
    /// [`Self::pop_checked`] to distinguish the two).
    pub fn pop(&self) -> Option<(SampleId, Bytes)> {
        self.pop_until(None).unwrap_or(None)
    }

    /// Like [`Self::pop`] but gives up after `timeout`.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<(SampleId, Bytes)> {
        self.pop_until(Some(Instant::now() + timeout))
            .unwrap_or(None)
    }

    /// Like [`Self::pop`]/[`Self::pop_timeout`] (`timeout: None` waits
    /// forever) but surfaces producer death: `Err(ProducerLost)` when a
    /// registered producer died mid-fill and the queue has drained,
    /// `Ok(None)` on clean close or timeout.
    pub fn pop_checked(
        &self,
        timeout: Option<Duration>,
    ) -> Result<Option<(SampleId, Bytes)>, ProducerLost> {
        self.pop_until(timeout.map(|t| Instant::now() + t))
    }

    /// The shared drain loop: waits for data until `deadline` (forever
    /// when `None`), draining the queue ahead of death/close/timeout
    /// checks so buffered samples are never lost. A dead registered
    /// producer surfaces as an error the moment the queue is empty —
    /// never by blocking out the timeout.
    fn pop_until(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Option<(SampleId, Bytes)>, ProducerLost> {
        let mut st = self.inner.state.lock();
        loop {
            if let Some((id, data)) = st.queue.pop_front() {
                st.used -= data.len() as u64;
                self.inner.metrics.popped.inc();
                self.inner.metrics.used_bytes.set(st.used);
                drop(st);
                self.inner.space.notify_all();
                return Ok(Some((id, data)));
            }
            if st.lost > 0 {
                return Err(ProducerLost);
            }
            if st.closed {
                return Ok(None);
            }
            match deadline {
                Some(d) => {
                    if self.inner.data.wait_until(&mut st, d).timed_out() {
                        return Ok(None);
                    }
                }
                None => self.inner.data.wait(&mut st),
            }
        }
    }

    /// Closes the buffer: producers fail fast, the consumer drains what
    /// remains and then sees `None`.
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        drop(st);
        self.inner.space.notify_all();
        self.inner.data.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Cumulative producer/consumer statistics.
    pub fn stats(&self) -> StagingStats {
        let st = self.inner.state.lock();
        StagingStats {
            pushed: self.inner.metrics.pushed.get() - self.inner.metrics.base_pushed,
            popped: self.inner.metrics.popped.get() - self.inner.metrics.base_popped,
            max_used_bytes: st.max_used,
        }
    }
}

/// A producer died mid-fill: samples it owed the buffer will never
/// arrive, so the consumer's stream is broken past this point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerLost;

impl std::fmt::Display for ProducerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "staging producer died mid-fill")
    }
}

impl std::error::Error for ProducerLost {}

/// RAII registration of one producer (see [`StagingBuffer::producer`]).
#[derive(Debug)]
pub struct ProducerGuard {
    buf: StagingBuffer,
    completed: bool,
}

impl ProducerGuard {
    /// Marks this producer as cleanly finished; its eventual drop no
    /// longer counts as a death.
    pub fn complete(mut self) {
        self.completed = true;
    }
}

impl Drop for ProducerGuard {
    fn drop(&mut self) {
        let mut st = self.buf.inner.state.lock();
        st.producers -= 1;
        if !self.completed {
            st.lost += 1;
        }
        drop(st);
        // Wake consumers either way: a death must surface immediately.
        self.buf.inner.data.notify_all();
    }
}

/// Cumulative [`StagingBuffer`] statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagingStats {
    /// Samples ever pushed.
    pub pushed: u64,
    /// Samples ever popped.
    pub popped: u64,
    /// High-water mark of buffered bytes.
    pub max_used_bytes: u64,
}

impl From<StagingStats> for crate::tier::TierStats {
    /// The staging buffer viewed as the topmost tier: pops are hits
    /// (consumers never miss — they block), pushes are fills.
    fn from(s: StagingStats) -> Self {
        crate::tier::TierStats {
            name: "staging".to_string(),
            hits: s.popped,
            fills: s.pushed,
            used: s.max_used_bytes,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let buf = StagingBuffer::new(1_000_000);
        for i in 0..10u64 {
            assert!(buf.push(i, Bytes::from(vec![i as u8; 10])));
        }
        for i in 0..10u64 {
            let (id, data) = buf.pop().unwrap();
            assert_eq!(id, i);
            assert_eq!(data[0], i as u8);
        }
    }

    #[test]
    fn capacity_accounting() {
        let buf = StagingBuffer::new(100);
        buf.push(1, Bytes::from(vec![0u8; 60]));
        assert_eq!(buf.used(), 60);
        buf.push(2, Bytes::from(vec![0u8; 40]));
        assert_eq!(buf.used(), 100);
        buf.pop().unwrap();
        assert_eq!(buf.used(), 40);
        let stats = buf.stats();
        assert_eq!(
            stats,
            StagingStats {
                pushed: 2,
                popped: 1,
                max_used_bytes: 100
            }
        );
        // The staging view of the tiered statistics: pops are hits.
        let tier: crate::tier::TierStats = stats.into();
        assert_eq!((tier.hits, tier.fills, tier.used), (1, 2, 100));
    }

    #[test]
    fn producer_blocks_until_consumer_frees_space() {
        let buf = StagingBuffer::new(100);
        buf.push(1, Bytes::from(vec![0u8; 80]));
        let b2 = buf.clone();
        let t0 = Instant::now();
        let producer = thread::spawn(move || {
            b2.push(2, Bytes::from(vec![0u8; 80]));
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "producer should be blocked");
        buf.pop().unwrap();
        producer.join().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn consumer_blocks_until_data_arrives() {
        let buf = StagingBuffer::new(100);
        let b2 = buf.clone();
        let consumer = thread::spawn(move || b2.pop().unwrap());
        thread::sleep(Duration::from_millis(20));
        assert!(!consumer.is_finished(), "consumer should be blocked");
        buf.push(9, Bytes::from_static(b"x"));
        let (id, _) = consumer.join().unwrap();
        assert_eq!(id, 9);
    }

    #[test]
    fn oversized_sample_admitted_when_empty() {
        let buf = StagingBuffer::new(10);
        assert!(buf.push(1, Bytes::from(vec![0u8; 100])));
        assert_eq!(buf.pop().unwrap().1.len(), 100);
    }

    #[test]
    fn close_unblocks_consumer_with_none() {
        let buf = StagingBuffer::new(10);
        let b2 = buf.clone();
        let consumer = thread::spawn(move || b2.pop());
        thread::sleep(Duration::from_millis(10));
        buf.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn close_drains_remaining_samples_first() {
        let buf = StagingBuffer::new(100);
        buf.push(1, Bytes::from_static(b"a"));
        buf.push(2, Bytes::from_static(b"b"));
        buf.close();
        assert!(buf.pop().is_some());
        assert!(buf.pop().is_some());
        assert!(buf.pop().is_none());
    }

    #[test]
    fn close_unblocks_waiting_producer_with_false() {
        // A producer blocked in `push` (buffer full) must observe
        // `close()` and return `false` instead of hanging forever.
        let buf = StagingBuffer::new(100);
        assert!(buf.push(1, Bytes::from(vec![0u8; 90])));
        let b2 = buf.clone();
        let producer = thread::spawn(move || b2.push(2, Bytes::from(vec![0u8; 90])));
        thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "producer should be blocked");
        buf.close();
        assert!(!producer.join().unwrap(), "closed push must report false");
        // The blocked sample was dropped; only the first remains.
        assert_eq!(buf.len(), 1);
        assert!(buf.pop().is_some());
        assert!(buf.pop().is_none());
    }

    #[test]
    fn push_after_close_is_rejected() {
        let buf = StagingBuffer::new(100);
        buf.close();
        assert!(!buf.push(1, Bytes::from_static(b"a")));
    }

    #[test]
    fn pop_timeout_expires_when_empty() {
        let buf = StagingBuffer::new(10);
        let t0 = Instant::now();
        assert!(buf.pop_timeout(Duration::from_millis(25)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn producer_death_surfaces_as_error_not_timeout() {
        let buf = StagingBuffer::new(100);
        let b2 = buf.clone();
        let producer = thread::spawn(move || {
            let guard = b2.producer();
            b2.push(1, Bytes::from_static(b"a"));
            drop(guard); // crash mid-fill: never completed
        });
        producer.join().unwrap();
        // The staged sample still drains first…
        assert_eq!(buf.pop_checked(None).unwrap().unwrap().0, 1);
        // …then the death surfaces immediately, well before the timeout.
        let t0 = Instant::now();
        assert_eq!(
            buf.pop_checked(Some(Duration::from_secs(10))),
            Err(ProducerLost)
        );
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(buf.lost_producers(), 1);
    }

    #[test]
    fn producer_death_wakes_a_blocked_consumer() {
        let buf = StagingBuffer::new(100);
        let b2 = buf.clone();
        let consumer = thread::spawn(move || b2.pop_checked(None));
        thread::sleep(Duration::from_millis(20));
        assert!(!consumer.is_finished(), "consumer should be blocked");
        drop(buf.producer()); // dies without completing
        assert_eq!(consumer.join().unwrap(), Err(ProducerLost));
    }

    #[test]
    fn completed_producers_do_not_trip_the_consumer() {
        let buf = StagingBuffer::new(100);
        let guard = buf.producer();
        buf.push(1, Bytes::from_static(b"a"));
        guard.complete();
        buf.close();
        assert_eq!(buf.pop_checked(None).unwrap().unwrap().0, 1);
        assert_eq!(buf.pop_checked(None), Ok(None));
        assert_eq!(buf.lost_producers(), 0);
    }

    #[test]
    fn unchecked_pops_stop_early_on_producer_death() {
        // Legacy Option-based pops cannot express the error, but they
        // must not hang either: they return None promptly.
        let buf = StagingBuffer::new(100);
        drop(buf.producer());
        let t0 = Instant::now();
        assert_eq!(buf.pop_timeout(Duration::from_secs(10)), None);
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumer_lose_nothing() {
        let buf = StagingBuffer::new(1_000);
        let per_producer = 500u64;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let b = buf.clone();
                thread::spawn(move || {
                    for i in 0..per_producer {
                        let id = p * per_producer + i;
                        assert!(b.push(id, Bytes::from(vec![(id % 251) as u8; 16])));
                    }
                })
            })
            .collect();
        let consumer = {
            let b = buf.clone();
            thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..4 * per_producer {
                    let (id, data) = b.pop().unwrap();
                    assert_eq!(data[0], (id % 251) as u8, "corrupted sample {id}");
                    assert!(seen.insert(id), "duplicate sample {id}");
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let seen = consumer.join().unwrap();
        assert_eq!(seen.len(), 2_000);
        assert_eq!(buf.used(), 0);
    }
}
