//! Workspace wiring smoke test: compile-time usage of every `nopfs::*`
//! re-exported module, so a broken manifest or renamed crate fails this
//! suite immediately rather than only breaking downstream consumers.
//!
//! Each statement touches a real item through the umbrella path — `use`
//! alone would not catch a module that exists but lost its contents.

use std::sync::Arc;

#[test]
fn every_umbrella_reexport_resolves() {
    // util — deterministic PRNG and units.
    let mut rng = nopfs::util::rng::Xoshiro256pp::seed_from_u64(1);
    assert!(rng.next_below(10) < 10);
    assert_eq!(nopfs::util::units::MB, 1_000_000.0);

    // clairvoyance — shuffle specs and access streams.
    let spec = nopfs::clairvoyance::sampler::ShuffleSpec::new(1, 16, 2, 4, false);
    let stream = nopfs::clairvoyance::stream::AccessStream::new(spec, 0, 1);
    assert_eq!(stream.materialize().len() as u64, spec.worker_epoch_len(0));

    // perfmodel — system presets.
    let sys = nopfs::perfmodel::presets::fig8_small_cluster();
    assert!(sys.workers > 0);

    // policy — the workspace registry and shared decision core.
    assert_eq!(nopfs::policy::PolicyId::ALL.len(), 10);
    assert!(nopfs::policy::PolicyId::NoPfs.capabilities().ease_of_use);

    // simulator — policies over a tiny scenario (dispatched on the
    // workspace registry's `PolicyId`).
    let scenario =
        nopfs::simulator::Scenario::new("smoke", sys.clone(), vec![1_000u64; 32], 1, 2, 7);
    let result =
        nopfs::simulator::run(&scenario, nopfs::simulator::PolicyId::NoPfs).expect("supported");
    assert!(result.execution_time > 0.0);

    // pfs + datasets — materialize a synthetic dataset into a PFS.
    let scale = nopfs::util::timing::TimeScale::new(1e-6);
    let pfs = nopfs::pfs::Pfs::in_memory(sys.pfs_read.clone(), scale);
    let profile = nopfs::datasets::DatasetProfile::new("smoke", 8, 500.0, 0.0, 2, 3);
    profile.materialize(&pfs);
    assert!(pfs.read(0).is_ok());

    // storage — the staging reorder buffer and the tiered hierarchy
    // (the PFS is a DataSource, so it slots in as a TierStack origin).
    let stage = nopfs::storage::ReorderStage::new(1_000);
    stage.push(0, 0, bytes::Bytes::from_static(b"x"));
    assert_eq!(stage.pop().map(|(id, _)| id), Some(0));
    let stack = nopfs::storage::TierStack::new(
        vec![
            Arc::new(nopfs::storage::MemoryBackend::new("ram", 10_000)),
            Arc::new(pfs.clone()),
        ],
        nopfs::storage::PromotePolicy::IfFits,
    );
    assert!(stack.read(0).is_ok());
    assert_eq!(stack.stats(0).promotions, 1);

    // net — a loopback cluster.
    let eps = nopfs::net::cluster::<u64>(1, nopfs::net::NetConfig::new(1e9, scale));
    eps[0].send(0, 7).expect("loopback");
    assert_eq!(eps[0].recv().expect("delivered").msg, 7);

    // core — a full (tiny) NoPFS job.
    let sizes = Arc::new(profile.sizes());
    let config = nopfs::core::JobConfig::new(
        2,
        1,
        4,
        {
            let mut s = sys.clone();
            s.workers = 2;
            s
        },
        scale,
    );
    let job = nopfs::core::Job::new(config, Arc::clone(&sizes));
    let consumed = job.run(&pfs, |w| w.by_ref().count());
    assert_eq!(consumed.iter().sum::<usize>(), 8);

    // baselines — the no-I/O loader on the same job shape.
    let config = nopfs::core::JobConfig::new(
        2,
        1,
        4,
        {
            let mut s = sys.clone();
            s.workers = 2;
            s
        },
        scale,
    );
    let noio = nopfs::baselines::NoIoRunner::new(config, Arc::clone(&sizes));
    let counts = noio.run(|l| {
        let mut n = 0;
        while l.next_sample().is_some() {
            n += 1;
        }
        n
    });
    assert_eq!(counts.iter().sum::<i32>(), 8);

    // train — the tiny real model exists and initializes.
    let task = nopfs::train::model::SyntheticTask::new(4, 0.5, 0.0, 5);
    let model = nopfs::train::model::LogisticModel::new(4);
    let x = task.features(0, 0);
    assert!(model.predict(&x).is_finite());
}
