//! Cross-crate integration tests: full NoPFS jobs on real substrates,
//! baselines on identical substrates, clairvoyance invariants end to
//! end, and failure injection.

use nopfs::baselines::{DataLoader, DoubleBufferRunner, LbannRunner, NoIoRunner};
use nopfs::clairvoyance::stream::AccessStream;
use nopfs::core::{Job, JobConfig};
use nopfs::datasets::DatasetProfile;
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::perfmodel::SystemSpec;
use nopfs::pfs::Pfs;
use nopfs::util::timing::TimeScale;
use std::collections::HashMap;
use std::sync::Arc;

fn small_system(workers: usize) -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = workers;
    sys.staging.capacity = 128 * 1_024;
    sys.staging.threads = 4;
    sys.classes[0].capacity = 256 * 1_024;
    sys.classes[1].capacity = 1_024 * 1_024;
    sys
}

fn profile(samples: u64) -> DatasetProfile {
    DatasetProfile::new("itest", samples, 1_200.0, 200.0, 7, 0x17E5)
}

/// The headline correctness property: a full NoPFS job on a real
/// (disk-backed) PFS delivers every sample exactly once per epoch, with
/// verifiable contents, in exactly the order clairvoyance predicted.
#[test]
fn nopfs_job_on_disk_pfs_delivers_exact_streams() {
    let workers = 4;
    let epochs = 3u64;
    let p = profile(120);
    let sizes = Arc::new(p.sizes());
    let config = JobConfig::new(
        0xE2E,
        epochs,
        8,
        small_system(workers),
        TimeScale::new(1e-5),
    );
    let job = Job::new(config.clone(), Arc::clone(&sizes));

    let dir = std::env::temp_dir().join(format!("nopfs-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let pfs = Pfs::on_disk(&dir, config.system.pfs_read.clone(), config.scale);
    p.materialize(&pfs);

    let delivered = job.run(&pfs, |w| {
        let rank = w.rank();
        let mut ids = Vec::new();
        while let Some((id, data)) = w.next_sample() {
            let (decoded, _) = p
                .decode(&data)
                .expect("payload integrity after caching hops");
            assert_eq!(decoded, id);
            ids.push(id);
        }
        (rank, ids)
    });
    std::fs::remove_dir_all(&dir).ok();

    let spec = config.shuffle_spec(sizes.len() as u64);
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for (rank, ids) in delivered {
        let expect = AccessStream::new(spec, rank, epochs).materialize();
        assert_eq!(ids, expect, "worker {rank} deviated from clairvoyant order");
        for id in ids {
            *counts.entry(id).or_default() += 1;
        }
    }
    assert_eq!(counts.len(), 120);
    assert!(counts.values().all(|&c| c == epochs as u32));
}

/// NoPFS and every baseline deliver the same multiset of samples per
/// epoch — policies differ in *where* bytes come from, never in *what*
/// the trainer sees.
#[test]
fn all_loaders_deliver_equivalent_data() {
    let workers = 2;
    let epochs = 2u64;
    let p = profile(60);
    let sizes = Arc::new(p.sizes());
    let mut sys = small_system(workers);
    // Plenty of RAM so the LBANN store is supported.
    sys.classes[0].capacity = 200_000;
    let config = JobConfig::new(0xE2F, epochs, 4, sys, TimeScale::new(1e-5));
    let collect = |ids: Vec<Vec<u64>>| {
        let mut all: Vec<u64> = ids.into_iter().flatten().collect();
        all.sort_unstable();
        all
    };
    let drain = |l: &mut dyn DataLoader| {
        let mut ids = Vec::new();
        while let Some((id, _)) = l.next_sample() {
            ids.push(id);
        }
        ids
    };

    let pfs = Pfs::in_memory(config.system.pfs_read.clone(), config.scale);
    p.materialize(&pfs);

    let nopfs = collect(Job::new(config.clone(), Arc::clone(&sizes)).run(&pfs, |w| {
        let mut ids = Vec::new();
        while let Some((id, _)) = w.next_sample() {
            ids.push(id);
        }
        ids
    }));
    let pytorch = collect(
        DoubleBufferRunner::pytorch_like(config.clone(), Arc::clone(&sizes)).run(&pfs, drain),
    );
    let lbann = collect(LbannRunner::new(config.clone(), Arc::clone(&sizes)).run(&pfs, drain));
    let noio = collect(NoIoRunner::new(config, Arc::clone(&sizes)).run(drain));

    assert_eq!(nopfs, pytorch);
    assert_eq!(nopfs, lbann);
    assert_eq!(nopfs, noio);
}

/// Transient PFS faults during a full job are retried transparently
/// everywhere (class prefetchers, staging fetches, remote fallbacks).
#[test]
fn faults_during_full_job_are_survived() {
    let p = profile(80);
    let sizes = Arc::new(p.sizes());
    let config = JobConfig::new(0xFA17, 2, 8, small_system(4), TimeScale::new(1e-5));
    let job = Job::new(config.clone(), Arc::clone(&sizes));
    let pfs = job.make_pfs();
    p.materialize(&pfs);
    for id in (0..80).step_by(7) {
        pfs.inject_fault(id, 2);
    }
    let consumed: usize = job.run(&pfs, |w| w.by_ref().count()).iter().sum();
    assert_eq!(consumed, 160);
}

/// Two independent processes (jobs) given the same seed compute
/// identical placements and streams — the zero-metadata-traffic
/// property that clairvoyance buys.
#[test]
fn independent_jobs_agree_on_everything() {
    let p = profile(90);
    let sizes = Arc::new(p.sizes());
    let mk = || {
        Job::new(
            JobConfig::new(0xA9EE, 2, 8, small_system(3), TimeScale::new(1e-5)),
            Arc::clone(&sizes),
        )
    };
    let (a, b) = (mk(), mk());
    for w in 0..3 {
        assert_eq!(
            a.placement().assignment(w).class_map(),
            b.placement().assignment(w).class_map()
        );
    }
    for k in 0..90u64 {
        assert_eq!(a.placement().holders(k), b.placement().holders(k));
    }
}

/// Epoch boundaries and batch shapes survive the whole pipeline.
#[test]
fn batch_shapes_are_stable_across_policies() {
    let p = profile(48);
    let sizes = Arc::new(p.sizes());
    let config = JobConfig::new(5, 2, 5, small_system(2), TimeScale::new(1e-5));
    let pfs = Pfs::in_memory(config.system.pfs_read.clone(), config.scale);
    p.materialize(&pfs);
    // 24 samples per worker per epoch with batch 5: 5,5,5,5,4.
    let expect = vec![5usize, 5, 5, 5, 4, 5, 5, 5, 5, 4];
    let shapes =
        DoubleBufferRunner::pytorch_like(config.clone(), Arc::clone(&sizes)).run(&pfs, |l| {
            let mut shapes = Vec::new();
            while let Some(b) = l.next_batch() {
                shapes.push(b.len());
            }
            shapes
        });
    for s in shapes {
        assert_eq!(s, expect);
    }
    let shapes = Job::new(config, Arc::clone(&sizes)).run(&pfs, |w| {
        let mut shapes = Vec::new();
        while let Some(b) = w.next_batch() {
            shapes.push(b.len());
        }
        shapes
    });
    for s in shapes {
        assert_eq!(s, expect);
    }
}
