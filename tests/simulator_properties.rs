//! Integration-level properties of the simulator: the qualitative
//! orderings the paper's Fig. 8 rests on, plus property-based checks of
//! the clairvoyance invariants feeding it.

use nopfs::clairvoyance::frequency::FrequencyTable;
use nopfs::clairvoyance::sampler::ShuffleSpec;
use nopfs::perfmodel::presets::{fig8_small_cluster, thrashing_pfs_curve};
use nopfs::simulator::{run, PolicyId, Scenario, StorageRegime};
use nopfs::util::units::MB;
use proptest::prelude::*;

fn paper_like_scenario(f: usize, epochs: u64) -> Scenario {
    let mut sys = fig8_small_cluster();
    sys.pfs_read = thrashing_pfs_curve(32.0, 272.0 * MB);
    sys.classes[0].capacity = (f as u64) * 100_000 / 8; // RAM: 1/8 of S
    sys.classes[1].capacity = (f as u64) * 100_000 / 2; // SSD: 1/2 of S
    sys.staging.capacity = 2_000_000;
    Scenario::new("prop", sys, vec![100_000u64; f], epochs, 16, 0x51AB)
}

/// The paper's headline simulation ordering, on a D < S < N*D scenario.
#[test]
fn fig8_qualitative_ordering_holds() {
    let s = paper_like_scenario(4_000, 4);
    assert_eq!(s.regime(), StorageRegime::FitsInCluster);
    let time = |p: PolicyId| run(&s, p).expect("supported").execution_time;
    let lb = time(PolicyId::Perfect);
    let nopfs = time(PolicyId::NoPfs);
    let staging = time(PolicyId::StagingBuffer);
    let naive = time(PolicyId::Naive);
    let locality = time(PolicyId::LocalityAware);
    // Lower bound <= NoPFS <= every real competitor <= Naive.
    assert!(lb <= nopfs * 1.0001);
    assert!(nopfs <= staging, "NoPFS {nopfs} vs StagingBuffer {staging}");
    assert!(
        nopfs <= locality * 1.01,
        "NoPFS {nopfs} vs LocalityAware {locality}"
    );
    assert!(staging < naive, "StagingBuffer {staging} vs Naive {naive}");
    // And NoPFS lands near the bound, the paper's central claim.
    assert!(
        nopfs < lb * 1.25,
        "NoPFS {nopfs} too far from lower bound {lb}"
    );
}

/// LBANN's documented limitation, surfaced exactly at the boundary.
#[test]
fn lbann_supported_iff_dataset_fits_memory() {
    let mut s = paper_like_scenario(1_000, 2);
    // Aggregate RAM: 4 workers x 12.5 MB = 50 MB; dataset 100 MB.
    assert!(run(&s, PolicyId::LbannDynamic).is_err());
    s.system.classes[0].capacity = 26_000_000; // aggregate 104 MB
    assert!(run(&s, PolicyId::LbannDynamic).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every epoch of every policy-transformed run still consumes the
    /// advertised number of samples (no policy silently drops work),
    /// and execution time grows with epochs.
    #[test]
    fn sim_fetch_counts_and_monotonicity(
        f in 200usize..800,
        epochs in 1u64..4,
        seed in 0u64..u64::MAX,
    ) {
        let mut s = paper_like_scenario(f, epochs);
        s.seed = seed;
        for policy in [PolicyId::NoPfs, PolicyId::StagingBuffer, PolicyId::LocalityAware] {
            let r = run(&s, policy).expect("supported");
            let expected: u64 = (0..4)
                .map(|w| s.shuffle_spec().worker_epoch_len(w) * epochs)
                .sum();
            prop_assert_eq!(r.fetch_counts.iter().sum::<u64>(), expected);
            prop_assert!(r.execution_time > 0.0);
        }
    }

    /// Clairvoyance invariant at integration level: per-epoch access is
    /// exactly-once across workers for any (seed, F, N, B).
    #[test]
    fn exactly_once_per_epoch(
        seed in 0u64..u64::MAX,
        f in 1u64..500,
        n in 1usize..6,
        b in 1usize..9,
    ) {
        let spec = ShuffleSpec::new(seed, f, n, b, false);
        let table = FrequencyTable::build(&spec, 3);
        for k in 0..f {
            prop_assert_eq!(table.total_frequency(k), 3);
        }
    }

    /// Lemma 1 at integration level: for every sample the min/max
    /// worker frequencies bracket the mean.
    #[test]
    fn access_imbalance_brackets_mean(
        seed in 0u64..u64::MAX,
        f in 50u64..300,
    ) {
        let n = 4usize;
        let epochs = 8u64;
        let spec = ShuffleSpec::new(seed, f, n, 4, false);
        let table = FrequencyTable::build(&spec, epochs);
        let mean = epochs as f64 / n as f64;
        for k in 0..f {
            let counts: Vec<u16> = (0..n).map(|w| table.frequency(w, k)).collect();
            let min = *counts.iter().min().expect("non-empty") as f64;
            let max = *counts.iter().max().expect("non-empty") as f64;
            prop_assert!(min <= mean + 1e-9);
            prop_assert!(max >= mean - 1e-9);
        }
    }
}
