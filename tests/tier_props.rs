//! Property tests for the tiered storage hierarchy: a [`TierStack`]
//! must be a *transparent* cache over its origin — byte-identical
//! reads under any tier configuration, capacity accounting that never
//! goes negative across promote/evict cycles, and graceful degradation
//! to the paper's two-tier (RAM + PFS) setup when a middle tier has no
//! capacity.

use bytes::Bytes;
use nopfs::pfs::Pfs;
use nopfs::storage::{MemoryBackend, PromotePolicy, TierStack};
use nopfs::util::rng::Xoshiro256pp;
use nopfs::util::timing::TimeScale;
use proptest::prelude::*;
use std::sync::Arc;

/// A PFS origin holding `n` samples of seeded sizes/contents.
fn materialized_pfs(seed: u64, n: u64) -> (Pfs, Vec<Bytes>) {
    let pfs = Pfs::in_memory(
        nopfs::perfmodel::ThroughputCurve::flat(1e12),
        TimeScale::new(1e-6),
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let payloads: Vec<Bytes> = (0..n)
        .map(|id| {
            let size = 1 + rng.next_below(64) as usize;
            let fill = (id % 251) as u8 ^ (seed % 256) as u8;
            let data = Bytes::from(vec![fill; size]);
            pfs.put(id, data.clone());
            data
        })
        .collect();
    (pfs, payloads)
}

fn stack_over(pfs: &Pfs, caps: &[u64], promote: PromotePolicy) -> TierStack {
    let mut sources: Vec<Arc<dyn nopfs::storage::DataSource>> = caps
        .iter()
        .enumerate()
        .map(|(j, &cap)| {
            Arc::new(MemoryBackend::new(format!("tier{j}"), cap))
                as Arc<dyn nopfs::storage::DataSource>
        })
        .collect();
    sources.push(Arc::new(pfs.clone()));
    TierStack::new(sources, promote)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under random tier counts, capacities, promotion policies, and
    /// access sequences, every `TierStack::read` is byte-identical to a
    /// direct `Pfs::read`.
    #[test]
    fn tiered_reads_equal_direct_pfs_reads(
        seed in any::<u64>(),
        caps in prop::collection::vec(0u64..200, 0..4),
        accesses in prop::collection::vec(0u64..32, 1..120),
        evicting in any::<bool>(),
    ) {
        let (pfs, payloads) = materialized_pfs(seed, 32);
        let promote = if evicting { PromotePolicy::Evicting } else { PromotePolicy::IfFits };
        let stack = stack_over(&pfs, &caps, promote);
        for &id in &accesses {
            let via_stack = stack.read(id).expect("origin holds every sample");
            let direct = pfs.read(id).expect("origin holds every sample");
            prop_assert_eq!(&via_stack, &direct, "sample {} corrupted by the hierarchy", id);
            prop_assert_eq!(&via_stack, &payloads[id as usize]);
        }
        // Reads were fully accounted: every access hit exactly one tier.
        let total_hits: u64 = stack.all_stats().iter().map(|s| s.hits).sum();
        prop_assert_eq!(total_hits, accesses.len() as u64);
    }

    /// Capacity accounting never goes negative (or over capacity) and
    /// stays consistent with the backing sources across arbitrary
    /// promote/evict cycles, including explicit evictions.
    #[test]
    fn capacity_accounting_survives_promote_evict_cycles(
        seed in any::<u64>(),
        caps in prop::collection::vec(0u64..150, 1..4),
        ops in prop::collection::vec((0u64..24, any::<bool>()), 1..150),
    ) {
        let (pfs, _) = materialized_pfs(seed, 24);
        let stack = stack_over(&pfs, &caps, PromotePolicy::Evicting);
        for &(id, evict) in &ops {
            if evict {
                if let Some(tier) = stack.locate(id) {
                    stack.evict(tier, id);
                }
            } else {
                stack.read(id).expect("origin holds every sample");
            }
            for (j, &cap) in caps.iter().enumerate() {
                let s = stack.stats(j);
                // `used` is u64 (can't be negative); the invariants are
                // no over-capacity and fill/evict bookkeeping balance.
                prop_assert!(s.used <= cap, "tier {} used {} > cap {}", j, s.used, cap);
                prop_assert!(s.bytes_evicted <= s.bytes_filled);
                prop_assert!(s.evictions <= s.fills);
                prop_assert_eq!(s.used, stack.source(j).used());
            }
        }
        // After evicting everything, every tier drains to exactly zero.
        for id in 0..24 {
            if let Some(tier) = stack.locate(id) {
                stack.evict(tier, id);
            }
        }
        for j in 0..caps.len() {
            prop_assert_eq!(stack.stats(j).used, 0);
            prop_assert_eq!(stack.source(j).count(), 0);
        }
    }

    /// Concurrent readers under random tier shapes and promotion
    /// policies see exactly the bytes a sequential oracle sees: every
    /// read (single or vectored) from any thread is byte-identical to
    /// the origin's payload, while read-path promotions, FIFO
    /// evictions, and spill demotions race freely underneath.
    #[test]
    fn concurrent_mixed_ops_preserve_byte_identity(
        seed in any::<u64>(),
        caps in prop::collection::vec(0u64..200, 1..4),
        evicting in any::<bool>(),
    ) {
        let (pfs, payloads) = materialized_pfs(seed, 32);
        let promote = if evicting { PromotePolicy::Evicting } else { PromotePolicy::IfFits };
        let stack = stack_over(&pfs, &caps, promote);
        let stack = &stack;
        let payloads = &payloads;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (t + 1));
                    for _ in 0..40 {
                        match rng.next_below(4) {
                            // Single reads: byte-identity under racing
                            // promotions/evictions.
                            0 | 1 => {
                                let id = rng.next_below(32);
                                let data = stack.read(id).expect("origin holds every sample");
                                assert_eq!(data, payloads[id as usize], "sample {id} corrupted");
                            }
                            // Vectored reads: same contract, batched.
                            2 => {
                                let ids: Vec<u64> =
                                    (0..4).map(|_| rng.next_below(32)).collect();
                                for (r, &id) in stack.read_many(&ids).iter().zip(&ids) {
                                    let data = r.as_ref().expect("origin holds every sample");
                                    assert_eq!(data, &payloads[id as usize], "sample {id} corrupted");
                                }
                            }
                            // Explicit evictions racing the readers.
                            _ => {
                                let id = rng.next_below(32);
                                if let Some(tier) = stack.locate(id) {
                                    stack.evict(tier, id);
                                }
                            }
                        }
                    }
                });
            }
        });
        // Quiesced: the catalog and the backing sources agree exactly.
        for (j, &cap) in caps.iter().enumerate() {
            let s = stack.stats(j);
            prop_assert!(s.used <= cap, "tier {} used {} > cap {}", j, s.used, cap);
            prop_assert_eq!(s.used, stack.source(j).used());
        }
    }

    /// Exact capacity accounting under concurrency: after racing
    /// readers (promotions, FIFO evictions, spills) and evictors
    /// quiesce, each tier's `used` equals its backend's accounting,
    /// never exceeded its capacity mid-run, and draining every resident
    /// sample returns it to exactly zero — no leaked or double-counted
    /// bytes.
    #[test]
    fn concurrent_capacity_accounting_is_exact(
        seed in any::<u64>(),
        caps in prop::collection::vec(1u64..120, 1..3),
    ) {
        let (pfs, _) = materialized_pfs(seed, 24);
        let stack = stack_over(&pfs, &caps, PromotePolicy::Evicting);
        let stack = &stack;
        let caps_ref = &caps;
        std::thread::scope(|s| {
            // Readers drive promotion/eviction/demotion churn.
            for t in 0..3u64 {
                s.spawn(move || {
                    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (0xA0 + t));
                    for _ in 0..50 {
                        let id = rng.next_below(24);
                        stack.read(id).expect("origin holds every sample");
                    }
                });
            }
            // One evictor racing them, also spot-checking that used can
            // never exceed capacity while the churn runs.
            s.spawn(move || {
                let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xE0);
                for _ in 0..50 {
                    let id = rng.next_below(24);
                    if let Some(tier) = stack.locate(id) {
                        stack.evict(tier, id);
                    }
                    for (j, &cap) in caps_ref.iter().enumerate() {
                        let used = stack.stats(j).used;
                        assert!(used <= cap, "tier {j} used {used} > cap {cap} mid-run");
                    }
                }
            });
        });
        // Drain everything; exact zero proves no byte was leaked by a
        // racing reservation or double-freed by a racing eviction.
        for id in 0..24 {
            if let Some(tier) = stack.locate(id) {
                stack.evict(tier, id);
            }
        }
        for j in 0..caps.len() {
            prop_assert_eq!(stack.stats(j).used, 0, "tier {} leaked bytes", j);
            prop_assert_eq!(stack.source(j).count(), 0);
        }
    }

    /// A zero-capacity middle tier degrades the three-tier hierarchy to
    /// the paper's two-tier setup: identical bytes, identical top-tier
    /// and origin traffic, nothing ever resident in the dead tier.
    #[test]
    fn zero_capacity_middle_tier_degrades_to_two_tiers(
        seed in any::<u64>(),
        ram_cap in 1u64..200,
        accesses in prop::collection::vec(0u64..24, 1..100),
    ) {
        let (pfs, _) = materialized_pfs(seed, 24);
        let three = stack_over(&pfs, &[ram_cap, 0], PromotePolicy::IfFits);
        let two = stack_over(&pfs, &[ram_cap], PromotePolicy::IfFits);
        for &id in &accesses {
            prop_assert_eq!(three.read(id).expect("ok"), two.read(id).expect("ok"));
        }
        let (t3, t2) = (three.all_stats(), two.all_stats());
        // Top tier behaves identically...
        prop_assert_eq!(t3[0].hits, t2[0].hits);
        prop_assert_eq!(t3[0].fills, t2[0].fills);
        prop_assert_eq!(t3[0].used, t2[0].used);
        // ...the dead middle tier never holds anything...
        prop_assert_eq!(t3[1].fills, 0);
        prop_assert_eq!(t3[1].used, 0);
        // ...and the origin sees the same traffic in both setups.
        prop_assert_eq!(t3[2].hits, t2[1].hits);
        prop_assert_eq!(t3[2].bytes_read, t2[1].bytes_read);
    }
}
