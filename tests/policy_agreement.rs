//! Cross-harness agreement: for every `PolicyId`, the threaded
//! runtime's *observable behavior* must match the discrete-event
//! simulator's, because both execute the same shared decision core
//! (`nopfs_policy`).
//!
//! Checked per policy, on an ample-storage and a scarce-storage
//! configuration:
//!
//! - **supportedness parity** — a configuration the simulator refuses
//!   (LBANN with an over-sized dataset) is refused by the runtime too,
//!   with the same reason;
//! - **order/content agreement** — each rank's delivered sample
//!   sequence equals the core-transformed access stream the simulator
//!   replays (exact, element for element);
//! - **prestage presence** — the runtime performs a prestaging phase
//!   exactly when the simulator prices one;
//! - **Table 1 spot checks** — fully-randomizing policies deliver every
//!   sample exactly once per epoch; DeepIO's opportunistic mode loses
//!   dataset coverage in both harnesses when caches shrink.

use bytes::Bytes;
use nopfs::baselines::run_policy;
use nopfs::core::{ElasticJob, JobConfig};
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::perfmodel::{SystemSpec, ThroughputCurve};
use nopfs::pfs::Pfs;
use nopfs::policy::{
    build_core, elastic_epoch_streams, transformed_streams, FaultPlan, PolicyId, ReadErrors,
};
use nopfs::simulator::{run_elastic, Scenario, SimError};
use nopfs::util::timing::TimeScale;
use std::collections::HashSet;
use std::sync::Arc;

const SAMPLE_BYTES: u64 = 1_000;
const EPOCHS: u64 = 2;
const BATCH: usize = 4;
const WORKERS: usize = 4;
const SEED: u64 = 0xA9;

struct Config {
    name: &'static str,
    samples: u64,
    ram_samples: u64,
    ssd_samples: u64,
    /// Capacity of a third, slowest cache tier (0 = the classic
    /// two-class hierarchy).
    hdd_samples: u64,
}

/// Ample: everything fits everywhere — all ten policies feasible with
/// full coverage. Scarce: RAM holds 24 samples/worker (aggregate 96 <
/// 200), so the LBANN store is infeasible and DeepIO's cache covers
/// only part of the dataset. Three-tier: a RAM → SSD → HDD hierarchy
/// above the PFS, where no single tier holds the dataset but the three
/// together do — every policy must run unchanged through the deeper
/// `TierStack`.
const CONFIGS: [Config; 3] = [
    Config {
        name: "ample",
        samples: 64,
        ram_samples: 64,
        ssd_samples: 64,
        hdd_samples: 0,
    },
    Config {
        name: "scarce",
        samples: 200,
        ram_samples: 24,
        ssd_samples: 30,
        hdd_samples: 0,
    },
    Config {
        name: "three-tier",
        samples: 120,
        ram_samples: 40,
        ssd_samples: 30,
        hdd_samples: 50,
    },
];

fn system(cfg: &Config) -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = WORKERS;
    sys.staging.capacity = 16 * SAMPLE_BYTES;
    sys.staging.threads = 2;
    sys.classes[0].capacity = cfg.ram_samples * SAMPLE_BYTES;
    sys.classes[1].capacity = cfg.ssd_samples * SAMPLE_BYTES;
    if cfg.hdd_samples > 0 {
        // A third, slowest cache tier below the SSD: same shape, a
        // quarter of the throughput, one prefetch thread.
        let mut hdd = sys.classes[1].clone();
        hdd.name = "hdd".to_string();
        hdd.capacity = cfg.hdd_samples * SAMPLE_BYTES;
        hdd.prefetch_threads = 1;
        hdd.read = hdd.read.scaled(0.25);
        hdd.write = hdd.write.scaled(0.25);
        sys.classes.push(hdd);
    }
    sys
}

/// Runs the runtime leg, returning each rank's delivered ids (in
/// delivery order) and its stats, or the refusal message.
#[allow(clippy::type_complexity)]
fn runtime_leg(
    policy: PolicyId,
    cfg: &Config,
) -> Result<Vec<(Vec<u64>, nopfs::core::WorkerStats)>, String> {
    let config = JobConfig::new(SEED, EPOCHS, BATCH, system(cfg), TimeScale::new(1e-6));
    let sizes = Arc::new(vec![SAMPLE_BYTES; cfg.samples as usize]);
    let pfs = Pfs::in_memory(ThroughputCurve::flat(1e12), TimeScale::new(1e-6));
    for id in 0..cfg.samples {
        pfs.put(
            id,
            Bytes::from(vec![(id % 256) as u8; SAMPLE_BYTES as usize]),
        );
    }
    let outcome = run_policy(policy, config, sizes, &pfs, |l| {
        let mut got = Vec::new();
        while let Some((id, _)) = l.next_sample() {
            got.push(id);
        }
        (l.rank(), got, l.stats())
    })
    .map_err(|e| e.0)?;
    let mut sorted = outcome.per_worker;
    sorted.sort_by_key(|(rank, _, _)| *rank);
    Ok(sorted
        .into_iter()
        .map(|(_, got, stats)| (got, stats))
        .collect())
}

fn sim_leg(policy: PolicyId, cfg: &Config) -> Result<nopfs::simulator::SimResult, String> {
    let scenario = Scenario::new(
        cfg.name,
        system(cfg),
        vec![SAMPLE_BYTES; cfg.samples as usize],
        EPOCHS,
        BATCH,
        SEED,
    );
    nopfs::simulator::run(&scenario, policy).map_err(|SimError::Unsupported(m)| m)
}

/// The streams both harnesses replay: the shared core's transformed
/// access streams (identity for the core-less NoPFS / lower bound).
fn expected_streams(policy: PolicyId, cfg: &Config) -> Vec<Vec<u64>> {
    let sys = system(cfg);
    let sizes = vec![SAMPLE_BYTES; cfg.samples as usize];
    let spec =
        nopfs::clairvoyance::sampler::ShuffleSpec::new(SEED, cfg.samples, WORKERS, BATCH, false);
    let core = build_core(policy, &sys, &sizes, &spec).expect("feasibility checked by caller");
    transformed_streams(core.as_deref(), &spec, EPOCHS)
}

#[test]
fn every_policy_agrees_across_harnesses() {
    for cfg in &CONFIGS {
        for policy in PolicyId::ALL {
            let sim = sim_leg(policy, cfg);
            let runtime = runtime_leg(policy, cfg);
            // Supportedness parity, with the same reason.
            match (&sim, &runtime) {
                (Ok(_), Ok(_)) => {}
                (Err(s), Err(r)) => {
                    assert_eq!(s, r, "{policy}/{}: refusal reasons diverged", cfg.name);
                    continue;
                }
                (sim, runtime) => panic!(
                    "{policy}/{}: harnesses disagree on feasibility \
                     (sim supported: {}, runtime supported: {})",
                    cfg.name,
                    sim.is_ok(),
                    runtime.is_ok()
                ),
            }
            let sim = sim.unwrap();
            let runtime = runtime.unwrap();

            // Order/content agreement: the runtime delivered exactly the
            // core-transformed streams the simulator replays.
            let expected = expected_streams(policy, cfg);
            assert_eq!(runtime.len(), WORKERS);
            for (w, (got, _)) in runtime.iter().enumerate() {
                assert_eq!(
                    got, &expected[w],
                    "{policy}/{}: worker {w} deviated from the shared core's stream",
                    cfg.name
                );
            }

            // Prestage presence parity.
            let prestaged: u64 = runtime.iter().map(|(_, s)| s.prestage_fetches).sum();
            assert_eq!(
                prestaged > 0,
                sim.prestage_time > 0.0,
                "{policy}/{}: prestage presence diverged \
                 (runtime {prestaged} fetches, sim {}s)",
                cfg.name,
                sim.prestage_time
            );

            // Table 1, full randomization: every sample exactly once per
            // epoch, in both harnesses' shared streams.
            if policy.capabilities().full_randomization {
                for epoch in 0..EPOCHS {
                    let mut per_epoch: Vec<u64> = Vec::new();
                    for (w, (got, _)) in runtime.iter().enumerate() {
                        let len = expected[w].len() / EPOCHS as usize;
                        per_epoch.extend(&got[epoch as usize * len..(epoch as usize + 1) * len]);
                    }
                    per_epoch.sort_unstable();
                    let all: Vec<u64> = (0..cfg.samples).collect();
                    assert_eq!(
                        per_epoch, all,
                        "{policy}/{}: epoch {epoch} not exactly-once",
                        cfg.name
                    );
                }
            }

            // Table 1, coverage: DeepIO's opportunistic mode shrinks
            // dataset coverage exactly when the simulator reports it.
            if policy == PolicyId::DeepIoOpportunistic {
                let distinct: HashSet<u64> = runtime
                    .iter()
                    .flat_map(|(got, _)| got.iter().copied())
                    .collect();
                assert_eq!(
                    (distinct.len() as u64) < cfg.samples,
                    sim.coverage < 1.0,
                    "{policy}/{}: coverage observation diverged",
                    cfg.name
                );
                if sim.coverage < 1.0 {
                    assert!(sim.note.is_some(), "coverage note expected");
                }
            }
        }
    }
}

/// Elastic agreement: under the SAME fault plan — a mid-epoch crash,
/// a leave, a straggler, and transient read errors — the threaded
/// runtime's recovery streams ([`ElasticJob`]) and the simulator's
/// modelled ones ([`run_elastic`]) are identical per epoch and per
/// rank, and both equal the policy layer's canonical expected streams.
#[test]
fn runtime_and_simulator_recover_identical_streams_under_one_fault_plan() {
    let cfg = &CONFIGS[0]; // ample: every source path reachable
    let plan = FaultPlan::fault_free()
        .crash(0, 2, 1)
        .leave(1)
        .straggle(0, 2, 2.0)
        .with_read_errors(ReadErrors {
            rate: 0.1,
            max_burst: 2,
            seed: 0xFA11,
        });

    // Runtime leg: real threads, warm-cache handoff, actual retries.
    let config = JobConfig::new(SEED, EPOCHS, BATCH, system(cfg), TimeScale::new(1e-6));
    let sizes = Arc::new(vec![SAMPLE_BYTES; cfg.samples as usize]);
    let job = ElasticJob::new(config, Arc::clone(&sizes), plan.clone()).expect("valid plan");
    let pfs = job.make_pfs();
    for id in 0..cfg.samples {
        pfs.put(
            id,
            Bytes::from(vec![(id % 256) as u8; SAMPLE_BYTES as usize]),
        );
    }
    let report = job.run(&pfs);

    // Simulator leg: the same plan, modelled.
    let scenario = Scenario::new(
        cfg.name,
        system(cfg),
        vec![SAMPLE_BYTES; cfg.samples as usize],
        EPOCHS,
        BATCH,
        SEED,
    );
    let sim = run_elastic(&scenario, PolicyId::NoPfs, &plan).expect("valid plan");

    // Both harnesses saw the same memberships and replanned once.
    assert_eq!(report.memberships, vec![WORKERS, WORKERS - 1]);
    assert_eq!(sim.memberships, report.memberships);
    assert_eq!(report.replans, 1);
    assert_eq!(sim.replans, 1);
    assert_eq!(report.recoveries, 1);
    assert_eq!(sim.recoveries, 1);
    assert_eq!(report.replan_shuffle_generations, 0);

    // Per-epoch, per-rank stream identity across harnesses, and both
    // match the canonical policy-layer expectation.
    assert_eq!(report.per_epoch, sim.epoch_streams);
    let canon = elastic_epoch_streams(
        PolicyId::NoPfs,
        &system(cfg),
        &vec![SAMPLE_BYTES; cfg.samples as usize],
        &nopfs::clairvoyance::sampler::ShuffleSpec::new(SEED, cfg.samples, WORKERS, BATCH, false),
        EPOCHS,
        &plan,
    )
    .expect("valid plan");
    assert_eq!(report.per_epoch, canon);
}

/// The NoPFS selection rule is one function (`decision::select_source`)
/// called by both the runtime's staging fetches and the simulator's
/// NoPFS policy; with warm caches, both harnesses must therefore agree
/// that steady-state fetches stop hitting the PFS.
#[test]
fn nopfs_source_selection_agrees_when_caches_warm() {
    let cfg = &CONFIGS[0]; // ample: everything cacheable
    let sim = sim_leg(PolicyId::NoPfs, cfg).expect("supported");
    let runtime = runtime_leg(PolicyId::NoPfs, cfg).expect("supported");
    // Simulator: cached fetches dominate (fetch_counts = [staging,
    // local, remote, pfs]).
    let total: u64 = sim.fetch_counts.iter().sum();
    assert!(sim.fetch_counts[1] + sim.fetch_counts[2] > 0);
    assert!((sim.fetch_counts[3] as f64) < 0.75 * total as f64);
    // Runtime: same shape from the same selection rule.
    let mut merged = runtime[0].1.clone();
    for (_, s) in &runtime[1..] {
        merged.merge(s);
    }
    assert!(merged.local_fetches + merged.remote_fetches > 0);
    assert!((merged.pfs_fetches as f64) < 0.75 * merged.total_fetches() as f64);
}
