//! Property tests for the fault-injection and elasticity layer: the
//! determinism suite behind the headline guarantee — a job disturbed by
//! *any* valid [`FaultPlan`] (crashes, churn, stragglers, transient
//! read errors, in any combination) delivers bit-for-bit the same
//! global sample stream as the undisturbed run, and every membership
//! change is replanned incrementally (zero epoch-shuffle
//! regenerations) instead of re-running the O(E·F) setup pass.
//!
//! Three random-plan properties cover the threaded runtime
//! ([`ElasticJob`]) and the discrete-event simulator
//! ([`nopfs::simulator::run_elastic`]) across NoPFS and the identity
//! baselines; a deterministic test pins the incremental-replan
//! cheapness claim at the artifact level.
//!
//! A second section covers the object-store failure domain: random
//! seeded cloud disturbances (spikes, throttle bursts, brownouts) never
//! change the delivered stream on the runtime or the modelled access
//! totals in the simulator, hedged reads never change bytes, and the
//! circuit breaker's transition counters satisfy its state-machine
//! invariants under arbitrary seeded event walks.

use bytes::Bytes;
use nopfs::clairvoyance::SetupPass;
use nopfs::core::{ElasticJob, ElasticReport, JobConfig};
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::perfmodel::SystemSpec;
use nopfs::perfmodel::ThroughputCurve;
use nopfs::policy::fault::{respec, ShuffleSpec};
use nopfs::policy::{elastic_global_stream, CloudFaults, FaultPlan, PolicyId, ReadErrors};
use nopfs::simulator::{run, run_elastic, CloudResilience, CloudSpec, Scenario};
use nopfs::storage::{
    BreakerConfig, BreakerState, CircuitBreaker, DataSource, Disturbance, HedgeConfig,
    ObjectStoreBackend, ObjectStoreConfig, ResilienceConfig, ResilientSource, RetryPolicy,
    SourceHealth,
};
use nopfs::util::timing::TimeScale;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xF4;
const SAMPLES: u64 = 60;
const SAMPLE_BYTES: u64 = 1_000;
const WORKERS: usize = 3;
const EPOCHS: u64 = 3;
const BATCH: usize = 4;

/// A 3-worker system small enough that property cases stay cheap, with
/// per-worker RAM large enough to hold the whole dataset so the LBANN
/// store stays feasible even when churn drains the job to one worker.
fn small_system() -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = WORKERS;
    sys.staging.capacity = 64 * SAMPLE_BYTES;
    sys.staging.threads = 4;
    sys.classes[0].capacity = 80 * SAMPLE_BYTES;
    sys.classes[1].capacity = 100 * SAMPLE_BYTES;
    sys
}

fn spec() -> ShuffleSpec {
    ShuffleSpec::new(SEED, SAMPLES, WORKERS, BATCH, false)
}

/// The undisturbed global stream every disturbed run must reproduce.
fn canon() -> Vec<u64> {
    elastic_global_stream(
        PolicyId::NoPfs,
        &small_system(),
        &vec![SAMPLE_BYTES; SAMPLES as usize],
        &spec(),
        EPOCHS,
        &FaultPlan::fault_free(),
    )
    .expect("fault-free plan is always valid")
}

/// Runs the threaded elastic runtime under `plan`.
fn elastic_run(plan: FaultPlan) -> ElasticReport {
    let sizes = Arc::new(vec![SAMPLE_BYTES; SAMPLES as usize]);
    let config = JobConfig::new(SEED, EPOCHS, BATCH, small_system(), TimeScale::new(1e-6));
    let job = ElasticJob::new(config, Arc::clone(&sizes), plan).expect("clamped plan is valid");
    let pfs = job.make_pfs();
    for (id, &s) in sizes.iter().enumerate() {
        let mut v = vec![0u8; s as usize];
        v[0] = (id % 256) as u8;
        pfs.put(id as u64, Bytes::from(v));
    }
    job.run(&pfs)
}

/// Applies raw churn draws (0 = none, 1 = join, 2 = leave) before
/// epochs 1 and 2.
fn churned(mut plan: FaultPlan, churn1: u8, churn2: u8) -> FaultPlan {
    for (epoch, draw) in [(1u64, churn1), (2u64, churn2)] {
        plan = match draw {
            1 => plan.join(epoch),
            2 => plan.leave(epoch),
            _ => plan,
        };
    }
    plan
}

/// Clamps raw crash draws into the plan's run shape: the rank must
/// exist in the crash epoch's membership and the step must fall inside
/// that epoch — so every generated plan passes `FaultPlan::validate`.
fn with_clamped_crash(plan: FaultPlan, epoch: u64, raw_step: u64, raw_rank: u64) -> FaultPlan {
    let n = plan.memberships(WORKERS, EPOCHS)[epoch as usize];
    let steps = SAMPLES.div_ceil((n * BATCH) as u64);
    plan.crash(epoch, raw_step % steps, (raw_rank % n as u64) as usize)
}

/// Distinct memberships beyond the initial one: the incremental replans
/// a run must perform.
fn expected_replans(plan: &FaultPlan) -> usize {
    plan.memberships(WORKERS, EPOCHS)
        .into_iter()
        .filter(|&n| n != WORKERS)
        .collect::<BTreeSet<_>>()
        .len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: ANY plan with at least one
    /// crash-and-restart — here combined with random churn, a random
    /// straggler, and optional read-error injection — recovers the
    /// exact fault-free global stream, and every membership change is
    /// replanned without regenerating a single epoch shuffle.
    #[test]
    fn any_crash_and_restart_recovers_the_exact_global_stream(
        churn in (0..3u8, 0..3u8),
        crash in (0..3u64, 0..64u64, 0..64u64),
        straggler in (0..3u64, 0..3usize, 1.0f64..3.0),
        errors in (0..2u8, 0.01f64..0.2, 1..3u32, 0..u64::MAX),
    ) {
        let mut plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(straggler.0, straggler.1, straggler.2);
        if errors.0 == 1 {
            plan = plan.with_read_errors(ReadErrors {
                rate: errors.1,
                max_burst: errors.2,
                seed: errors.3,
            });
        }
        let plan = with_clamped_crash(plan, crash.0, crash.1, crash.2);
        prop_assert!(plan.has_crash());

        let report = elastic_run(plan.clone());
        prop_assert_eq!(&report.global_stream, &canon());
        prop_assert!(report.recoveries >= 1);
        prop_assert_eq!(report.stats.samples_consumed, SAMPLES * EPOCHS);
        // The cheapness half of the claim: recovery re-splits cached
        // setup streams; the shuffle-generation counter never advances.
        prop_assert_eq!(report.replans as usize, expected_replans(&plan));
        prop_assert_eq!(report.replan_shuffle_generations, 0);
        prop_assert_eq!(report.setup.shuffle_generations, EPOCHS);
    }

    /// Crash-free disturbances — churn, a straggler, and always-on read
    /// errors — leave delivered content untouched, and every injected
    /// error is absorbed by the retry layer beneath the tier stacks.
    #[test]
    fn churn_stragglers_and_read_errors_leave_content_untouched(
        churn in (0..3u8, 0..3u8),
        straggler in (0..3u64, 0..3usize, 1.0f64..4.0),
        errors in (0.01f64..0.25, 1..3u32, 0..u64::MAX),
    ) {
        let plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(straggler.0, straggler.1, straggler.2)
            .with_read_errors(ReadErrors {
                rate: errors.0,
                max_burst: errors.1,
                seed: errors.2,
            });

        let report = elastic_run(plan.clone());
        prop_assert_eq!(&report.global_stream, &canon());
        prop_assert_eq!(report.recoveries, 0);
        prop_assert_eq!(report.replans as usize, expected_replans(&plan));
        prop_assert_eq!(report.replan_shuffle_generations, 0);
        // Transient by construction: the retry budget exceeds the burst
        // bound, so every injected failure is retried through.
        prop_assert!(report.read_retries >= report.injected_read_errors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator's elastic path replays exactly too, for NoPFS and
    /// the three identity-transform baselines alike: random churn, an
    /// optional crash, and a straggler never change the modelled
    /// delivered stream.
    #[test]
    fn simulated_policies_replay_exactly_under_random_plans(
        policy_idx in 0..4usize,
        churn in (0..3u8, 0..3u8),
        crash in (0..2u8, 0..3u64, 0..64u64, 0..64u64),
        straggle_factor in 1.0f64..4.0,
    ) {
        let policy = [
            PolicyId::NoPfs,
            PolicyId::Naive,
            PolicyId::StagingBuffer,
            PolicyId::LbannDynamic,
        ][policy_idx];
        let scenario = Scenario::new(
            "fault-props",
            small_system(),
            vec![SAMPLE_BYTES; SAMPLES as usize],
            EPOCHS,
            BATCH,
            SEED,
        );

        let mut plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(1, 0, straggle_factor);
        if crash.0 == 1 {
            plan = with_clamped_crash(plan, crash.1, crash.2, crash.3);
        }

        let base = run_elastic(&scenario, policy, &FaultPlan::fault_free())
            .expect("fault-free plan is always valid");
        let hit = run_elastic(&scenario, policy, &plan).expect("clamped plan is valid");
        prop_assert_eq!(hit.global_stream(), base.global_stream());
        prop_assert_eq!(hit.replans, expected_replans(&plan));
        prop_assert_eq!(hit.recoveries, usize::from(plan.has_crash()));
    }
}

// ---------------------------------------------------------------------
// The object-store failure domain.
// ---------------------------------------------------------------------

const FLOOR: f64 = 0.002;

/// Random ambient cloud disturbances with a burst bound safely below
/// every client's retry budget.
fn cloud_faults(
    seed: u64,
    spike: (f64, f64),
    throttle_rate: f64,
    throttle_burst: u32,
) -> CloudFaults {
    CloudFaults {
        spike_rate: spike.0,
        spike_factor: spike.1,
        throttle_rate,
        throttle_burst,
        retry_after: FLOOR / 10.0,
        brownouts: Vec::new(),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cloud disturbances change when bytes arrive, never which bytes:
    /// a random spike/throttle mix under an always-on brownout —
    /// optionally layered over churn and a crash — still delivers the
    /// exact fault-free global stream on the threaded runtime.
    #[test]
    fn cloud_disturbed_runtime_streams_are_bit_identical(
        seed in 0..u64::MAX,
        spike in (0.0f64..0.2, 1.0f64..16.0),
        throttle in (0.0f64..0.2, 1..3u32),
        brownout in (1.0f64..3.0, 0.0f64..0.3),
        churn in (0..3u8, 0..3u8),
        crash in (0..2u8, 0..3u64, 0..64u64, 0..64u64),
    ) {
        let cloud = cloud_faults(seed, spike, throttle.0, throttle.1)
            .brownout(0.0, 1e12, brownout.0, brownout.1);
        let mut plan = churned(FaultPlan::fault_free(), churn.0, churn.1).with_cloud(cloud);
        if crash.0 == 1 {
            plan = with_clamped_crash(plan, crash.1, crash.2, crash.3);
        }

        let report = elastic_run(plan.clone());
        prop_assert_eq!(&report.global_stream, &canon());
        prop_assert_eq!(report.stats.samples_consumed, SAMPLES * EPOCHS);
        prop_assert_eq!(report.recoveries, u64::from(plan.has_crash()));
        // Every origin read went through the resilience layer, and the
        // per-tier statistics survived the cloud re-route.
        prop_assert!(report.resilience.reads > 0);
        prop_assert!(!report.tier_stats.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under a random seeded brownout the simulator's hardened client
    /// keeps the modelled access totals identical to the quiet and
    /// naive runs, its breaker counters satisfy the state-machine
    /// invariants (every half-open entry needs a prior open, every
    /// close a prior half-open; rejections only ever happen once
    /// tripped), and its bounded retry budget never exhausts.
    #[test]
    fn simulated_breaker_invariants_hold_under_random_brownouts(
        seed in 0..u64::MAX,
        spike in (0.0f64..0.1, 1.0f64..30.0),
        throttle in (0.0f64..0.3, 1..4u32),
        storm in (0.0f64..0.3, 0.1f64..0.6, 1.0f64..3.5, 0.0f64..0.4),
    ) {
        let scenario = Scenario::new(
            "cloud-props",
            small_system(),
            vec![SAMPLE_BYTES; SAMPLES as usize],
            EPOCHS,
            BATCH,
            SEED,
        );
        let curve = ThroughputCurve::flat(1e9);
        let with = |faults: CloudFaults, res: CloudResilience| {
            scenario
                .clone()
                .with_cloud(CloudSpec::new(FLOOR, curve.clone(), faults, res))
        };
        let ambient = cloud_faults(seed, spike, throttle.0, throttle.1);
        let quiet = run(
            &with(CloudFaults::none(seed), CloudResilience::hardened(FLOOR)),
            PolicyId::NoPfs,
        )
        .expect("NoPfs supports every scenario");
        let stormy = ambient.brownout(
            storm.0 * quiet.execution_time,
            storm.1 * quiet.execution_time,
            storm.2,
            storm.3,
        );
        let hardened = run(
            &with(stormy.clone(), CloudResilience::hardened(FLOOR)),
            PolicyId::NoPfs,
        )
        .expect("valid cloud spec");
        let naive = run(
            &with(stormy, CloudResilience::naive(FLOOR / 4.0)),
            PolicyId::NoPfs,
        )
        .expect("valid cloud spec");

        // Disturbances cost time, never content: identical totals.
        let total = |r: &nopfs::simulator::SimResult| r.fetch_counts.iter().sum::<u64>();
        prop_assert_eq!(total(&quiet), total(&hardened));
        prop_assert_eq!(total(&quiet), total(&naive));

        let hs = hardened.resilience.expect("cloud run reports stats");
        prop_assert!(hs.breaker_to_half_open <= hs.breaker_to_open);
        prop_assert!(hs.breaker_to_closed <= hs.breaker_to_half_open);
        if hs.breaker_open_rejections > 0 {
            prop_assert!(hs.breaker_to_open > 0);
        }
        prop_assert_eq!(hs.exhausted, 0);
        // Only the hardened client owns hedge/breaker machinery.
        let ns = naive.resilience.expect("cloud run reports stats");
        prop_assert_eq!(ns.hedges_fired, 0);
        prop_assert_eq!(ns.breaker_to_open, 0);
    }

    /// Hedging changes *when* bytes arrive, never *which* bytes: under
    /// random seeded tail-latency spikes, every read through a hedging
    /// [`ResilientSource`] returns the backend's canonical payload.
    #[test]
    fn hedged_reads_never_change_bytes(
        seed in 0..u64::MAX,
        spike in (0.05f64..0.5, 2.0f64..10.0),
    ) {
        let payload = |id: u64| bytes::Bytes::from(vec![(id % 251) as u8 + 1; 64]);
        // Wall-clock model (floor 100 us) so hedges genuinely race.
        let cfg = ObjectStoreConfig::new(1e-4, ThroughputCurve::flat(1e12), 4)
            .with_disturbance(Disturbance {
                spike_rate: spike.0,
                spike_factor: spike.1,
                ..Disturbance::none(seed)
            });
        let store = ObjectStoreBackend::in_memory(cfg, TimeScale::realtime());
        for id in 0..24u64 {
            store.write(id, payload(id)).expect("store has room");
        }
        let src = ResilientSource::new(
            Arc::new(store),
            ResilienceConfig::retry_only(RetryPolicy::new(
                4,
                Duration::from_micros(10),
                0.5,
                seed,
            ))
            .with_hedge(HedgeConfig::new(0.5, Duration::from_micros(150), 4)),
            TimeScale::realtime(),
        );
        // Two passes: the first fills the latency window, the second
        // hedges off the measured quantile.
        for round in 0..2u64 {
            for id in 0..24u64 {
                let got = src.read(id);
                prop_assert_eq!(
                    got.as_ref().ok(),
                    Some(&payload(id)),
                    "round {} id {}: hedged read diverged: {:?}",
                    round,
                    id,
                    got
                );
            }
        }
        prop_assert_eq!(src.resilience().expect("wrapper counts").reads, 48);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The breaker state machine under arbitrary seeded event walks:
    /// transition counters stay causally ordered, a denied request
    /// always coincides with an unhealthy backend, `reopen_at` is only
    /// ever reported while open, and an open breaker always admits a
    /// probe once its cooldown elapses.
    #[test]
    fn breaker_transitions_satisfy_state_machine_invariants(
        cfg in (1..4u32, 0.5f64..8.0, 1..3u32),
        events in proptest::collection::vec((0..3u8, 0.0f64..2.0), 1..120),
    ) {
        let cooldown = cfg.1;
        let b = CircuitBreaker::new(BreakerConfig::new(cfg.0, cooldown, cfg.2));
        let mut now = 0.0f64;
        for &(kind, dt) in &events {
            now += dt;
            match kind {
                0 => {
                    if b.allow(now) {
                        b.on_success(now);
                    }
                }
                1 => {
                    if b.allow(now) {
                        b.on_failure(now);
                    }
                }
                _ => {
                    if !b.allow(now) {
                        prop_assert_ne!(b.health(now), SourceHealth::Healthy);
                    }
                }
            }
            let (to_open, to_half_open, to_closed, rejections) = b.transitions();
            prop_assert!(to_half_open <= to_open, "half-open without a prior open");
            prop_assert!(to_closed <= to_half_open, "close without a prior half-open");
            if rejections > 0 {
                prop_assert!(to_open > 0, "rejection before the first trip");
            }
            match b.reopen_at() {
                Some(t) => {
                    prop_assert_eq!(b.state(), BreakerState::Open);
                    prop_assert!(t <= now + cooldown + 1e-9);
                }
                None => prop_assert_ne!(b.state(), BreakerState::Open),
            }
        }
        if let Some(t) = b.reopen_at() {
            prop_assert!(b.allow(t), "cooldown elapsed but the probe was denied");
            prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        }
    }
}

/// The artifact-level statement of the cheapness claim: an incremental
/// replan re-splits the cached setup streams into artifacts that are
/// bit-identical to a fresh `SetupPass` at the new membership, while
/// its own shuffle-generation counter records zero.
#[test]
fn incremental_replan_is_bit_identical_and_generates_no_shuffles() {
    let base = SetupPass::new(spec(), EPOCHS).run();
    assert_eq!(base.shuffles_generated, EPOCHS);
    for n in [1, 2, 4, 5] {
        let replanned = base.replan(n);
        assert_eq!(replanned.shuffles_generated, 0, "replan to {n} workers");
        let fresh = SetupPass::new(respec(&spec(), n), EPOCHS).run();
        assert_eq!(fresh.shuffles_generated, EPOCHS);
        for w in 0..n {
            assert_eq!(
                replanned.stream(w),
                fresh.stream(w),
                "worker {w} of {n}: replan diverged from a fresh pass"
            );
        }
    }
}
