//! Property tests for the fault-injection and elasticity layer: the
//! determinism suite behind the headline guarantee — a job disturbed by
//! *any* valid [`FaultPlan`] (crashes, churn, stragglers, transient
//! read errors, in any combination) delivers bit-for-bit the same
//! global sample stream as the undisturbed run, and every membership
//! change is replanned incrementally (zero epoch-shuffle
//! regenerations) instead of re-running the O(E·F) setup pass.
//!
//! Three random-plan properties cover the threaded runtime
//! ([`ElasticJob`]) and the discrete-event simulator
//! ([`nopfs::simulator::run_elastic`]) across NoPFS and the identity
//! baselines; a deterministic test pins the incremental-replan
//! cheapness claim at the artifact level.

use bytes::Bytes;
use nopfs::clairvoyance::SetupPass;
use nopfs::core::{ElasticJob, ElasticReport, JobConfig};
use nopfs::perfmodel::presets::fig8_small_cluster;
use nopfs::perfmodel::SystemSpec;
use nopfs::policy::fault::{respec, ShuffleSpec};
use nopfs::policy::{elastic_global_stream, FaultPlan, PolicyId, ReadErrors};
use nopfs::simulator::{run_elastic, Scenario};
use nopfs::util::timing::TimeScale;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const SEED: u64 = 0xF4;
const SAMPLES: u64 = 60;
const SAMPLE_BYTES: u64 = 1_000;
const WORKERS: usize = 3;
const EPOCHS: u64 = 3;
const BATCH: usize = 4;

/// A 3-worker system small enough that property cases stay cheap, with
/// per-worker RAM large enough to hold the whole dataset so the LBANN
/// store stays feasible even when churn drains the job to one worker.
fn small_system() -> SystemSpec {
    let mut sys = fig8_small_cluster();
    sys.workers = WORKERS;
    sys.staging.capacity = 64 * SAMPLE_BYTES;
    sys.staging.threads = 4;
    sys.classes[0].capacity = 80 * SAMPLE_BYTES;
    sys.classes[1].capacity = 100 * SAMPLE_BYTES;
    sys
}

fn spec() -> ShuffleSpec {
    ShuffleSpec::new(SEED, SAMPLES, WORKERS, BATCH, false)
}

/// The undisturbed global stream every disturbed run must reproduce.
fn canon() -> Vec<u64> {
    elastic_global_stream(
        PolicyId::NoPfs,
        &small_system(),
        &vec![SAMPLE_BYTES; SAMPLES as usize],
        &spec(),
        EPOCHS,
        &FaultPlan::fault_free(),
    )
    .expect("fault-free plan is always valid")
}

/// Runs the threaded elastic runtime under `plan`.
fn elastic_run(plan: FaultPlan) -> ElasticReport {
    let sizes = Arc::new(vec![SAMPLE_BYTES; SAMPLES as usize]);
    let config = JobConfig::new(SEED, EPOCHS, BATCH, small_system(), TimeScale::new(1e-6));
    let job = ElasticJob::new(config, Arc::clone(&sizes), plan).expect("clamped plan is valid");
    let pfs = job.make_pfs();
    for (id, &s) in sizes.iter().enumerate() {
        let mut v = vec![0u8; s as usize];
        v[0] = (id % 256) as u8;
        pfs.put(id as u64, Bytes::from(v));
    }
    job.run(&pfs)
}

/// Applies raw churn draws (0 = none, 1 = join, 2 = leave) before
/// epochs 1 and 2.
fn churned(mut plan: FaultPlan, churn1: u8, churn2: u8) -> FaultPlan {
    for (epoch, draw) in [(1u64, churn1), (2u64, churn2)] {
        plan = match draw {
            1 => plan.join(epoch),
            2 => plan.leave(epoch),
            _ => plan,
        };
    }
    plan
}

/// Clamps raw crash draws into the plan's run shape: the rank must
/// exist in the crash epoch's membership and the step must fall inside
/// that epoch — so every generated plan passes `FaultPlan::validate`.
fn with_clamped_crash(plan: FaultPlan, epoch: u64, raw_step: u64, raw_rank: u64) -> FaultPlan {
    let n = plan.memberships(WORKERS, EPOCHS)[epoch as usize];
    let steps = SAMPLES.div_ceil((n * BATCH) as u64);
    plan.crash(epoch, raw_step % steps, (raw_rank % n as u64) as usize)
}

/// Distinct memberships beyond the initial one: the incremental replans
/// a run must perform.
fn expected_replans(plan: &FaultPlan) -> usize {
    plan.memberships(WORKERS, EPOCHS)
        .into_iter()
        .filter(|&n| n != WORKERS)
        .collect::<BTreeSet<_>>()
        .len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: ANY plan with at least one
    /// crash-and-restart — here combined with random churn, a random
    /// straggler, and optional read-error injection — recovers the
    /// exact fault-free global stream, and every membership change is
    /// replanned without regenerating a single epoch shuffle.
    #[test]
    fn any_crash_and_restart_recovers_the_exact_global_stream(
        churn in (0..3u8, 0..3u8),
        crash in (0..3u64, 0..64u64, 0..64u64),
        straggler in (0..3u64, 0..3usize, 1.0f64..3.0),
        errors in (0..2u8, 0.01f64..0.2, 1..3u32, 0..u64::MAX),
    ) {
        let mut plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(straggler.0, straggler.1, straggler.2);
        if errors.0 == 1 {
            plan = plan.with_read_errors(ReadErrors {
                rate: errors.1,
                max_burst: errors.2,
                seed: errors.3,
            });
        }
        let plan = with_clamped_crash(plan, crash.0, crash.1, crash.2);
        prop_assert!(plan.has_crash());

        let report = elastic_run(plan.clone());
        prop_assert_eq!(&report.global_stream, &canon());
        prop_assert!(report.recoveries >= 1);
        prop_assert_eq!(report.stats.samples_consumed, SAMPLES * EPOCHS);
        // The cheapness half of the claim: recovery re-splits cached
        // setup streams; the shuffle-generation counter never advances.
        prop_assert_eq!(report.replans as usize, expected_replans(&plan));
        prop_assert_eq!(report.replan_shuffle_generations, 0);
        prop_assert_eq!(report.setup.shuffle_generations, EPOCHS);
    }

    /// Crash-free disturbances — churn, a straggler, and always-on read
    /// errors — leave delivered content untouched, and every injected
    /// error is absorbed by the retry layer beneath the tier stacks.
    #[test]
    fn churn_stragglers_and_read_errors_leave_content_untouched(
        churn in (0..3u8, 0..3u8),
        straggler in (0..3u64, 0..3usize, 1.0f64..4.0),
        errors in (0.01f64..0.25, 1..3u32, 0..u64::MAX),
    ) {
        let plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(straggler.0, straggler.1, straggler.2)
            .with_read_errors(ReadErrors {
                rate: errors.0,
                max_burst: errors.1,
                seed: errors.2,
            });

        let report = elastic_run(plan.clone());
        prop_assert_eq!(&report.global_stream, &canon());
        prop_assert_eq!(report.recoveries, 0);
        prop_assert_eq!(report.replans as usize, expected_replans(&plan));
        prop_assert_eq!(report.replan_shuffle_generations, 0);
        // Transient by construction: the retry budget exceeds the burst
        // bound, so every injected failure is retried through.
        prop_assert!(report.read_retries >= report.injected_read_errors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator's elastic path replays exactly too, for NoPFS and
    /// the three identity-transform baselines alike: random churn, an
    /// optional crash, and a straggler never change the modelled
    /// delivered stream.
    #[test]
    fn simulated_policies_replay_exactly_under_random_plans(
        policy_idx in 0..4usize,
        churn in (0..3u8, 0..3u8),
        crash in (0..2u8, 0..3u64, 0..64u64, 0..64u64),
        straggle_factor in 1.0f64..4.0,
    ) {
        let policy = [
            PolicyId::NoPfs,
            PolicyId::Naive,
            PolicyId::StagingBuffer,
            PolicyId::LbannDynamic,
        ][policy_idx];
        let scenario = Scenario::new(
            "fault-props",
            small_system(),
            vec![SAMPLE_BYTES; SAMPLES as usize],
            EPOCHS,
            BATCH,
            SEED,
        );

        let mut plan = churned(FaultPlan::fault_free(), churn.0, churn.1)
            .straggle(1, 0, straggle_factor);
        if crash.0 == 1 {
            plan = with_clamped_crash(plan, crash.1, crash.2, crash.3);
        }

        let base = run_elastic(&scenario, policy, &FaultPlan::fault_free())
            .expect("fault-free plan is always valid");
        let hit = run_elastic(&scenario, policy, &plan).expect("clamped plan is valid");
        prop_assert_eq!(hit.global_stream(), base.global_stream());
        prop_assert_eq!(hit.replans, expected_replans(&plan));
        prop_assert_eq!(hit.recoveries, usize::from(plan.has_crash()));
    }
}

/// The artifact-level statement of the cheapness claim: an incremental
/// replan re-splits the cached setup streams into artifacts that are
/// bit-identical to a fresh `SetupPass` at the new membership, while
/// its own shuffle-generation counter records zero.
#[test]
fn incremental_replan_is_bit_identical_and_generates_no_shuffles() {
    let base = SetupPass::new(spec(), EPOCHS).run();
    assert_eq!(base.shuffles_generated, EPOCHS);
    for n in [1, 2, 4, 5] {
        let replanned = base.replan(n);
        assert_eq!(replanned.shuffles_generated, 0, "replan to {n} workers");
        let fresh = SetupPass::new(respec(&spec(), n), EPOCHS).run();
        assert_eq!(fresh.shuffles_generated, EPOCHS);
        for w in 0..n {
            assert_eq!(
                replanned.stream(w),
                fresh.stream(w),
                "worker {w} of {n}: replan diverged from a fresh pass"
            );
        }
    }
}
